//! CCITT G.721 32 kbit/s ADPCM (MediaBench `g72x.c` + `g721.c`).
//!
//! Bit-faithful port, including the original's 16-bit `short` truncation
//! semantics (mirrored by the explicit [`s16`] casts) — the guest assembly
//! in `asbr-workloads` applies sign-extensions at exactly the same points.

/// Truncate-to-`short` helper matching C assignment semantics.
#[inline]
fn s16(x: i32) -> i32 {
    x as i16 as i32
}

/// Powers of two used by the `quan` log-search.
pub(crate) const POWER2: [i32; 15] =
    [1, 2, 4, 8, 0x10, 0x20, 0x40, 0x80, 0x100, 0x200, 0x400, 0x800, 0x1000, 0x2000, 0x4000];

/// G.721 quantizer decision levels.
pub(crate) const QTAB_721: [i32; 7] = [-124, 80, 178, 246, 300, 349, 400];

/// Log-domain reconstruction levels per 4-bit code.
pub(crate) const DQLNTAB: [i32; 16] = [
    -2048, 4, 135, 213, 273, 323, 373, 425, 425, 373, 323, 273, 213, 135, 4, -2048,
];

/// Scale-factor multipliers per code.
pub(crate) const WITAB: [i32; 16] =
    [-12, 18, 41, 64, 112, 198, 355, 1122, 1122, 355, 198, 112, 64, 41, 18, -12];

/// Speed-control function values per code.
pub(crate) const FITAB: [i32; 16] = [
    0, 0, 0, 0x200, 0x200, 0x200, 0x600, 0xE00, 0xE00, 0x600, 0x200, 0x200, 0x200, 0, 0, 0,
];

/// Persistent codec state (`struct g72x_state`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct G72xState {
    /// Locked (slow) quantizer scale factor (19-bit, `long` in C).
    pub yl: i32,
    /// Unlocked (fast) quantizer scale factor.
    pub yu: i16,
    /// Short-term average of the F-function.
    pub dms: i16,
    /// Long-term average of the F-function.
    pub dml: i16,
    /// Speed-control parameter.
    pub ap: i16,
    /// Pole predictor coefficients.
    pub a: [i16; 2],
    /// Zero predictor coefficients.
    pub b: [i16; 6],
    /// Signs of previous dqsez values.
    pub pk: [i16; 2],
    /// Previous quantized differences, floating-point format.
    pub dq: [i16; 6],
    /// Previous reconstructed signals, floating-point format.
    pub sr: [i16; 2],
    /// Tone/transition detector flag.
    pub td: i16,
}

impl G72xState {
    /// The CCITT reset state (`g72x_init_state`).
    #[must_use]
    pub fn new() -> G72xState {
        G72xState {
            yl: 34816,
            yu: 544,
            dms: 0,
            dml: 0,
            ap: 0,
            a: [0; 2],
            b: [0; 6],
            pk: [0; 2],
            dq: [32; 6],
            sr: [32; 2],
            td: 0,
        }
    }
}

impl Default for G72xState {
    fn default() -> G72xState {
        G72xState::new()
    }
}

/// `quan`: index of the first table entry strictly greater than `val`.
fn quan(val: i32, table: &[i32]) -> i32 {
    for (i, &t) in table.iter().enumerate() {
        if val < t {
            return i as i32;
        }
    }
    table.len() as i32
}

/// `fmult`: multiply a predictor coefficient by a floating-point-format
/// signal value.
fn fmult(an: i32, srn: i32) -> i32 {
    let anmag = s16(if an > 0 { an } else { (-an) & 0x1FFF });
    let anexp = s16(quan(anmag, &POWER2) - 6);
    let anmant = s16(if anmag == 0 {
        32
    } else if anexp >= 0 {
        anmag >> anexp
    } else {
        anmag << -anexp
    });
    let wanexp = s16(anexp + ((srn >> 6) & 0xF) - 13);
    let wanmant = s16((anmant * (srn & 0o77) + 0x30) >> 4);
    let retval = s16(if wanexp >= 0 {
        (wanmant << wanexp) & 0x7FFF
    } else {
        wanmant >> -wanexp
    });
    if (an ^ srn) < 0 {
        -retval
    } else {
        retval
    }
}

/// `predictor_zero`: sixth-order zero-predictor partial estimate.
fn predictor_zero(st: &G72xState) -> i32 {
    let mut sezi = fmult(i32::from(st.b[0]) >> 2, i32::from(st.dq[0]));
    for i in 1..6 {
        sezi += fmult(i32::from(st.b[i]) >> 2, i32::from(st.dq[i]));
    }
    sezi
}

/// `predictor_pole`: second-order pole-predictor partial estimate.
fn predictor_pole(st: &G72xState) -> i32 {
    fmult(i32::from(st.a[1]) >> 2, i32::from(st.sr[1]))
        + fmult(i32::from(st.a[0]) >> 2, i32::from(st.sr[0]))
}

/// `step_size`: quantizer scale factor from the speed-control blend.
fn step_size(st: &G72xState) -> i32 {
    if st.ap >= 256 {
        i32::from(st.yu)
    } else {
        let y = st.yl >> 6;
        let dif = i32::from(st.yu) - y;
        let al = i32::from(st.ap) >> 2;
        let mut y = y;
        if dif > 0 {
            y += (dif * al) >> 6;
        } else if dif < 0 {
            y += (dif * al + 0x3F) >> 6;
        }
        y
    }
}

/// `quantize`: quantizes the prediction difference `d` against scale `y`.
fn quantize(d: i32, y: i32, table: &[i32]) -> i32 {
    let size = table.len() as i32;
    let dqm = s16(d.wrapping_abs());
    let exp = s16(quan(dqm >> 1, &POWER2));
    let mant = s16(((dqm << 7) >> exp) & 0x7F);
    let dl = s16((exp << 7) + mant);
    let dln = s16(dl - (y >> 2));
    let i = quan(dln, table);
    if d < 0 {
        (size << 1) + 1 - i
    } else if i == 0 {
        (size << 1) + 1
    } else {
        i
    }
}

/// `reconstruct`: inverse-quantizes a log-domain difference.
fn reconstruct(sign: bool, dqln: i32, y: i32) -> i32 {
    let dql = s16(dqln + (y >> 2));
    if dql < 0 {
        if sign {
            -0x8000
        } else {
            0
        }
    } else {
        let dex = (dql >> 7) & 15;
        let dqt = 128 + (dql & 127);
        let dq = s16((dqt << 7) >> (14 - dex));
        if sign {
            dq - 0x8000
        } else {
            dq
        }
    }
}

/// `update`: adapts every element of the codec state.
///
/// Clippy's structural suggestions (merging identical `if` arms, using
/// `clamp`) are suppressed deliberately: the control flow mirrors the
/// MediaBench C source statement for statement, because the guest
/// assembly is ported from the same structure and reviewed against it.
#[allow(clippy::too_many_arguments, clippy::if_same_then_else, clippy::manual_clamp)]
fn update(code_size: i32, y: i32, wi: i32, fi: i32, dq: i32, sr: i32, dqsez: i32, st: &mut G72xState) {
    let pk0: i32 = i32::from(dqsez < 0);
    let mut mag = s16(dq & 0x7FFF);

    // TRANSITION DETECT.
    let ylint = s16(st.yl >> 15);
    let ylfrac = s16((st.yl >> 10) & 0x1F);
    let thr1 = s16((32 + ylfrac) << ylint);
    let thr2 = s16(if ylint > 9 { 31 << 10 } else { thr1 });
    let dqthr = s16((thr2 + (thr2 >> 1)) >> 1);
    let tr: i32 = if st.td == 0 {
        0
    } else if mag <= dqthr {
        0
    } else {
        1
    };

    // Quantizer scale factor adaptation.
    st.yu = s16(y + ((wi - y) >> 5)) as i16;
    if st.yu < 544 {
        st.yu = 544;
    } else if st.yu > 5120 {
        st.yu = 5120;
    }
    st.yl += i32::from(st.yu) + ((-st.yl) >> 6);

    let mut a2p: i32 = 0;
    if tr == 1 {
        st.a = [0; 2];
        st.b = [0; 6];
    } else {
        // Pole and zero predictor coefficient adaptation.
        let pks1 = pk0 ^ i32::from(st.pk[0]);
        a2p = s16(i32::from(st.a[1]) - (i32::from(st.a[1]) >> 7));
        if dqsez != 0 {
            let fa1 = s16(if pks1 != 0 { i32::from(st.a[0]) } else { -i32::from(st.a[0]) });
            if fa1 < -8191 {
                a2p = s16(a2p - 0x100);
            } else if fa1 > 8191 {
                a2p = s16(a2p + 0xFF);
            } else {
                a2p = s16(a2p + (fa1 >> 5));
            }
            if (pk0 ^ i32::from(st.pk[1])) != 0 {
                if a2p <= -12160 {
                    a2p = -12288;
                } else if a2p >= 12416 {
                    a2p = 12288;
                } else {
                    a2p -= 0x80;
                }
            } else if a2p <= -12416 {
                a2p = -12288;
            } else if a2p >= 12160 {
                a2p = 12288;
            } else {
                a2p += 0x80;
            }
        }
        st.a[1] = a2p as i16;

        st.a[0] = s16(i32::from(st.a[0]) - (i32::from(st.a[0]) >> 8)) as i16;
        if dqsez != 0 {
            if pks1 == 0 {
                st.a[0] = s16(i32::from(st.a[0]) + 192) as i16;
            } else {
                st.a[0] = s16(i32::from(st.a[0]) - 192) as i16;
            }
        }
        let a1ul = s16(15360 - a2p);
        if i32::from(st.a[0]) < -a1ul {
            st.a[0] = (-a1ul) as i16;
        } else if i32::from(st.a[0]) > a1ul {
            st.a[0] = a1ul as i16;
        }

        for cnt in 0..6 {
            let bc = i32::from(st.b[cnt]);
            let mut nb = if code_size == 5 { bc - (bc >> 6) } else { bc - (bc >> 8) };
            if dq & 0x7FFF != 0 {
                if (dq ^ i32::from(st.dq[cnt])) >= 0 {
                    nb += 128;
                } else {
                    nb -= 128;
                }
            }
            st.b[cnt] = s16(nb) as i16;
        }
    }

    // Delayed-difference update (floating-point format).
    for cnt in (1..6).rev() {
        st.dq[cnt] = st.dq[cnt - 1];
    }
    if mag == 0 {
        st.dq[0] = if dq >= 0 { 0x20 } else { 0x20 - 0x400 };
    } else {
        let exp = quan(mag, &POWER2);
        st.dq[0] = if dq >= 0 {
            s16((exp << 6) + ((mag << 6) >> exp)) as i16
        } else {
            s16((exp << 6) + ((mag << 6) >> exp) - 0x400) as i16
        };
    }

    // Reconstructed-signal update (floating-point format).
    st.sr[1] = st.sr[0];
    if sr == 0 {
        st.sr[0] = 0x20;
    } else if sr > 0 {
        let exp = quan(sr, &POWER2);
        st.sr[0] = s16((exp << 6) + ((sr << 6) >> exp)) as i16;
    } else if sr > -32768 {
        mag = -sr;
        let exp = quan(mag, &POWER2);
        st.sr[0] = s16((exp << 6) + ((mag << 6) >> exp) - 0x400) as i16;
    } else {
        st.sr[0] = 0x20 - 0x400;
    }

    st.pk[1] = st.pk[0];
    st.pk[0] = pk0 as i16;

    // Tone detect.
    if tr == 1 {
        st.td = 0;
    } else if a2p < -11776 {
        st.td = 1;
    } else {
        st.td = 0;
    }

    // Adaptation speed control.
    st.dms = s16(i32::from(st.dms) + ((fi - i32::from(st.dms)) >> 5)) as i16;
    st.dml = s16(i32::from(st.dml) + (((fi << 2) - i32::from(st.dml)) >> 7)) as i16;

    if tr == 1 {
        st.ap = 256;
    } else if y < 1536 {
        st.ap = s16(i32::from(st.ap) + ((0x200 - i32::from(st.ap)) >> 4)) as i16;
    } else if st.td == 1 {
        st.ap = s16(i32::from(st.ap) + ((0x200 - i32::from(st.ap)) >> 4)) as i16;
    } else if (i32::from(st.dms) << 2).wrapping_sub(i32::from(st.dml)).abs()
        >= (i32::from(st.dml) >> 3)
    {
        st.ap = s16(i32::from(st.ap) + ((0x200 - i32::from(st.ap)) >> 4)) as i16;
    } else {
        st.ap = s16(i32::from(st.ap) + ((-i32::from(st.ap)) >> 4)) as i16;
    }
}

/// Encodes one 16-bit linear PCM sample into a 4-bit G.721 code
/// (`g721_encoder` with linear input coding).
#[must_use]
pub fn g721_encode(sl: i16, st: &mut G72xState) -> u8 {
    // Linearize to 14-bit dynamic range.
    let sl = i32::from(sl) >> 2;

    let sezi = s16(predictor_zero(st));
    let sez = s16(sezi >> 1);
    let sei = s16(sezi + predictor_pole(st));
    let se = s16(sei >> 1);

    let d = s16(sl - se);

    let y = s16(step_size(st));
    let i = quantize(d, y, &QTAB_721);
    let dq = s16(reconstruct(i & 8 != 0, DQLNTAB[i as usize], y));
    let sr = s16(if dq < 0 { se - (dq & 0x3FFF) } else { se + dq });

    let dqsez = s16(sr + sez - se);

    update(4, y, WITAB[i as usize] << 5, FITAB[i as usize], dq, sr, dqsez, st);

    i as u8
}

/// Decodes one 4-bit G.721 code into a 16-bit linear PCM sample
/// (`g721_decoder` with linear output coding).
#[must_use]
pub fn g721_decode(code: u8, st: &mut G72xState) -> i16 {
    let i = i32::from(code & 0x0F);

    let sezi = s16(predictor_zero(st));
    let sez = s16(sezi >> 1);
    let sei = s16(sezi + predictor_pole(st));
    let se = s16(sei >> 1);

    let y = s16(step_size(st));
    let dq = s16(reconstruct(i & 0x08 != 0, DQLNTAB[i as usize], y));
    let sr = s16(if dq < 0 { se - (dq & 0x3FFF) } else { se + dq });

    let dqsez = s16(sr - se + sez);

    update(4, y, WITAB[i as usize] << 5, FITAB[i as usize], dq, sr, dqsez, st);

    s16(sr << 2) as i16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_state_matches_ccitt() {
        let st = G72xState::new();
        assert_eq!(st.yl, 34816);
        assert_eq!(st.yu, 544);
        assert_eq!(st.dq, [32; 6]);
        assert_eq!(st.sr, [32; 2]);
    }

    #[test]
    fn quan_is_first_strictly_greater() {
        assert_eq!(quan(0, &POWER2), 0);
        assert_eq!(quan(1, &POWER2), 1);
        assert_eq!(quan(2, &POWER2), 2);
        assert_eq!(quan(3, &POWER2), 2);
        assert_eq!(quan(16383, &POWER2), 14);
        assert_eq!(quan(16384, &POWER2), 15);
        assert_eq!(quan(-5, &POWER2), 0);
    }

    #[test]
    fn fmult_zero_coefficient() {
        // an = 0: anmag 0, anmant 32; the result collapses to a tiny
        // rounding term regardless of srn.
        assert_eq!(fmult(0, 32), 0);
    }

    #[test]
    fn fmult_sign_rule() {
        let p = fmult(1000, 500);
        let n = fmult(-1000, 500);
        assert_eq!(p, -n);
        assert!(p > 0);
    }

    #[test]
    fn reconstruct_negative_dql() {
        assert_eq!(reconstruct(false, -2048, 0), 0);
        assert_eq!(reconstruct(true, -2048, 0), -0x8000);
    }

    #[test]
    fn silence_settles() {
        // Encoding silence emits the "no difference" codes and keeps the
        // decoder output near zero.
        let mut enc = G72xState::new();
        let mut dec = G72xState::new();
        let mut last = 0i16;
        for _ in 0..100 {
            let c = g721_encode(0, &mut enc);
            last = g721_decode(c, &mut dec);
        }
        assert!(last.abs() <= 8, "silence must decode near zero, got {last}");
    }

    #[test]
    fn encoder_and_decoder_states_stay_synchronized() {
        // The encoder embeds the decoder: feeding the decoder the
        // encoder's codes keeps their adaptive state identical.
        let mut enc = G72xState::new();
        let mut dec = G72xState::new();
        for n in 0..2000i32 {
            let sample = ((n * 311 % 8001 - 4000) + (n * 7 % 129)) as i16;
            let code = g721_encode(sample, &mut enc);
            let _ = g721_decode(code, &mut dec);
            assert_eq!(enc, dec, "state diverged at sample {n}");
        }
    }

    #[test]
    fn round_trip_tracks_a_sine() {
        let pcm: Vec<i16> = (0..4000)
            .map(|i| (8000.0 * (i as f64 * 0.06).sin()) as i16)
            .collect();
        let mut enc = G72xState::new();
        let mut dec = G72xState::new();
        let decoded: Vec<i16> =
            pcm.iter().map(|&s| g721_decode(g721_encode(s, &mut enc), &mut dec)).collect();
        let (mut sig, mut err) = (0f64, 0f64);
        for i in 500..pcm.len() {
            sig += f64::from(pcm[i]) * f64::from(pcm[i]);
            let e = f64::from(pcm[i]) - f64::from(decoded[i]);
            err += e * e;
        }
        let snr_db = 10.0 * (sig / err).log10();
        assert!(snr_db > 10.0, "G.721 SNR {snr_db:.1} dB too low");
    }

    #[test]
    fn codes_use_the_full_4_bit_range_eventually() {
        let mut enc = G72xState::new();
        let mut seen = [false; 16];
        for n in 0..6000i32 {
            let sample = ((n * 9973) % 60001 - 30000) as i16;
            seen[g721_encode(sample, &mut enc) as usize] = true;
        }
        let used = seen.iter().filter(|&&b| b).count();
        assert!(used >= 12, "only {used}/16 codes used on a wild signal");
    }

    #[test]
    fn extreme_inputs_do_not_panic_and_stay_bounded() {
        let mut enc = G72xState::new();
        let mut dec = G72xState::new();
        for &s in &[32767i16, -32768, 32767, -32768, 0, 32767, -32768] {
            let c = g721_encode(s, &mut enc);
            assert!(c < 16);
            let _ = g721_decode(c, &mut dec);
        }
        assert_eq!(enc, dec);
    }

    #[test]
    fn step_size_paths() {
        let mut st = G72xState::new();
        st.ap = 300; // fast path
        assert_eq!(step_size(&st), i32::from(st.yu));
        st.ap = 0; // locked path
        assert_eq!(step_size(&st), st.yl >> 6);
    }
}
