//! G.711 companding (µ-law and A-law), after the classic Sun `g711.c`
//! that ships with MediaBench.
//!
//! The µ-law encoder's segment search is another instance of the paper's
//! hard-to-predict data-dependent branch family; `asbr-workloads` carries
//! an assembly port of [`linear2ulaw`] as a scope-extension kernel.

/// µ-law segment endpoints.
const SEG_UEND: [i32; 8] = [0xFF, 0x1FF, 0x3FF, 0x7FF, 0xFFF, 0x1FFF, 0x3FFF, 0x7FFF];
/// A-law segment endpoints (13-bit domain).
const SEG_AEND: [i32; 8] = [0x1F, 0x3F, 0x7F, 0xFF, 0x1FF, 0x3FF, 0x7FF, 0xFFF];

const BIAS: i32 = 0x84;

fn search(val: i32, table: &[i32; 8]) -> i32 {
    for (i, &e) in table.iter().enumerate() {
        if val <= e {
            return i as i32;
        }
    }
    8
}

/// Encodes a 16-bit linear PCM sample to an 8-bit µ-law code.
///
/// # Examples
///
/// ```
/// use asbr_codecs::{linear2ulaw, ulaw2linear};
///
/// assert_eq!(linear2ulaw(0), 0xFF);
/// assert_eq!(ulaw2linear(0xFF), 0);
/// ```
#[must_use]
pub fn linear2ulaw(pcm: i16) -> u8 {
    let (val, mask) = if pcm < 0 {
        (BIAS - i32::from(pcm), 0x7F)
    } else {
        (i32::from(pcm) + BIAS, 0xFF)
    };
    let seg = search(val, &SEG_UEND);
    if seg >= 8 {
        (0x7F ^ mask) as u8
    } else {
        let uval = (seg << 4) | ((val >> (seg + 3)) & 0xF);
        (uval ^ mask) as u8
    }
}

/// Decodes an 8-bit µ-law code to a 16-bit linear PCM sample.
#[must_use]
pub fn ulaw2linear(code: u8) -> i16 {
    let u = i32::from(!code);
    let mut t = ((u & 0x0F) << 3) + BIAS;
    t <<= (u & 0x70) >> 4;
    (if u & 0x80 != 0 { BIAS - t } else { t - BIAS }) as i16
}

/// Encodes a 13-bit-domain linear PCM sample (16-bit input, low 3 bits
/// ignored) to an 8-bit A-law code.
#[must_use]
pub fn linear2alaw(pcm: i16) -> u8 {
    let pcm = i32::from(pcm) >> 3;
    let (val, mask) = if pcm >= 0 { (pcm, 0xD5) } else { (-pcm - 1, 0x55) };
    let seg = search(val, &SEG_AEND);
    if seg >= 8 {
        (0x7F ^ mask) as u8
    } else {
        let mut aval = seg << 4;
        if seg < 2 {
            aval |= (val >> 1) & 0xF;
        } else {
            aval |= (val >> seg) & 0xF;
        }
        (aval ^ mask) as u8
    }
}

/// Decodes an 8-bit A-law code to a 16-bit linear PCM sample.
#[must_use]
pub fn alaw2linear(code: u8) -> i16 {
    let a = i32::from(code) ^ 0x55;
    let mut t = (a & 0x0F) << 4;
    let seg = (a & 0x70) >> 4;
    match seg {
        0 => t += 8,
        1 => t += 0x108,
        _ => {
            t += 0x108;
            t <<= seg - 1;
        }
    }
    (if a & 0x80 != 0 { t } else { -t }) as i16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulaw_zero_and_extremes() {
        assert_eq!(linear2ulaw(0), 0xFF);
        assert_eq!(ulaw2linear(0xFF), 0);
        // Saturated codes decode to large magnitudes of the right sign.
        assert!(ulaw2linear(linear2ulaw(32767)) > 28000);
        assert!(ulaw2linear(linear2ulaw(-32768)) < -28000);
    }

    #[test]
    fn ulaw_codes_are_idempotent() {
        // Classic companding invariant: re-encoding a decoded code gives
        // the same code — except µ-law's negative zero (0x7F), which
        // decodes to 0 and re-encodes as positive zero (0xFF).
        for c in 0..=255u8 {
            let back = linear2ulaw(ulaw2linear(c));
            if c == 0x7F {
                assert_eq!(back, 0xFF, "negative zero folds into positive zero");
            } else {
                assert_eq!(back, c, "code {c:#04x}");
            }
        }
    }

    #[test]
    fn alaw_codes_are_idempotent() {
        for c in 0..=255u8 {
            assert_eq!(linear2alaw(alaw2linear(c)), c, "code {c:#04x}");
        }
    }

    #[test]
    fn ulaw_round_trip_error_is_logarithmically_bounded() {
        for pcm in (-32768..=32767).step_by(37) {
            let pcm = pcm as i16;
            let back = i32::from(ulaw2linear(linear2ulaw(pcm)));
            let err = (back - i32::from(pcm)).abs();
            // Step size in segment k is 2^(k+3); error <= half a step,
            // with segment bounds near |pcm|/16 + bias.
            let bound = (i32::from(pcm).abs() >> 4) + 40;
            assert!(err <= bound, "pcm {pcm}: back {back}, err {err} > {bound}");
        }
    }

    #[test]
    fn ulaw_is_monotone_on_magnitudes() {
        // Decoded values must be non-decreasing as positive inputs grow.
        let mut last = i32::MIN;
        for pcm in (0..=32767).step_by(11) {
            let v = i32::from(ulaw2linear(linear2ulaw(pcm as i16)));
            assert!(v >= last, "non-monotone at {pcm}");
            last = v;
        }
    }

    #[test]
    fn sign_symmetry() {
        for pcm in [1i16, 100, 5000, 30000] {
            let p = i32::from(ulaw2linear(linear2ulaw(pcm)));
            let n = i32::from(ulaw2linear(linear2ulaw(-pcm)));
            assert!((p + n).abs() <= 8, "asymmetric at {pcm}: {p} vs {n}");
        }
    }
}
