//! Direction predictor implementations.

use crate::Predictor;

/// Static always-not-taken prediction — the no-predictor baseline of many
/// embedded cores (paper, Sec. 8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NotTaken;

impl Predictor for NotTaken {
    #[inline]
    fn predict(&mut self, _pc: u32) -> bool {
        false
    }

    #[inline]
    fn update(&mut self, _pc: u32, _taken: bool) {}

    fn name(&self) -> &str {
        "not taken"
    }

    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(*self)
    }
}

/// Static always-taken prediction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Taken;

impl Predictor for Taken {
    #[inline]
    fn predict(&mut self, _pc: u32) -> bool {
        true
    }

    #[inline]
    fn update(&mut self, _pc: u32, _taken: bool) {}

    fn name(&self) -> &str {
        "taken"
    }

    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(*self)
    }
}

/// Advances a 2-bit saturating counter (0–3; ≥2 predicts taken).
#[inline]
fn saturate(counter: u8, taken: bool) -> u8 {
    if taken {
        (counter + 1).min(3)
    } else {
        counter.saturating_sub(1)
    }
}

/// Bimodal predictor: a table of 2-bit saturating counters indexed by the
/// branch address.
///
/// Counters initialise to *weakly taken* (2), as in SimpleScalar's `bimod`
/// which the paper's baseline is built on.
#[derive(Debug, Clone)]
pub struct Bimodal {
    counters: Vec<u8>,
    name: String,
}

impl Bimodal {
    /// Creates a bimodal predictor with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Bimodal {
        assert!(entries.is_power_of_two(), "bimodal entries must be a power of two");
        Bimodal { counters: vec![2; entries], name: format!("bi-{entries}") }
    }

    fn index(&self, pc: u32) -> usize {
        ((pc >> 2) as usize) & (self.counters.len() - 1)
    }

    /// Number of counters.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.counters.len()
    }
}

impl Predictor for Bimodal {
    #[inline]
    fn predict(&mut self, pc: u32) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    #[inline]
    fn update(&mut self, pc: u32, taken: bool) {
        let i = self.index(pc);
        self.counters[i] = saturate(self.counters[i], taken);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }
}

/// Gshare two-level predictor: the global history register is XORed with
/// the branch address to index a pattern history table of 2-bit counters
/// ([McFarling, TN-36]).
#[derive(Debug, Clone)]
pub struct Gshare {
    counters: Vec<u8>,
    history: u32,
    hist_mask: u32,
    name: String,
}

impl Gshare {
    /// Creates a gshare predictor with `hist_bits` of global history and a
    /// `entries`-counter pattern history table.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two, or if
    /// `hist_bits > 31`.
    #[must_use]
    pub fn new(hist_bits: u32, entries: usize) -> Gshare {
        assert!(entries.is_power_of_two(), "gshare entries must be a power of two");
        assert!(hist_bits <= 31, "history register too wide");
        Gshare {
            counters: vec![2; entries],
            history: 0,
            hist_mask: (1u32 << hist_bits) - 1,
            name: format!("gshare-{hist_bits}/{entries}"),
        }
    }

    /// The paper's configuration: 11-bit history, 2048-entry table.
    #[must_use]
    pub fn paper_baseline() -> Gshare {
        Gshare::new(11, 2048)
    }

    fn index(&self, pc: u32) -> usize {
        (((pc >> 2) ^ self.history) as usize) & (self.counters.len() - 1)
    }
}

impl Predictor for Gshare {
    #[inline]
    fn predict(&mut self, pc: u32) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    #[inline]
    fn update(&mut self, pc: u32, taken: bool) {
        let i = self.index(pc);
        self.counters[i] = saturate(self.counters[i], taken);
        self.history = ((self.history << 1) | u32::from(taken)) & self.hist_mask;
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }
}

/// A two-level *local*-history predictor (PAg): a per-branch history
/// table feeds a shared pattern table of 2-bit counters. Captures
/// per-branch periodic behaviour (e.g. the ADPCM nibble toggle) without
/// gshare's cross-branch interference.
#[derive(Debug, Clone)]
pub struct Local {
    histories: Vec<u16>,
    counters: Vec<u8>,
    hist_mask: u16,
    name: String,
}

impl Local {
    /// Creates a local predictor with `bht_entries` per-branch histories
    /// of `hist_bits` bits and a `pht_entries`-counter pattern table.
    ///
    /// # Panics
    ///
    /// Panics if either table size is not a power of two, or if
    /// `hist_bits > 15`.
    #[must_use]
    pub fn new(hist_bits: u32, bht_entries: usize, pht_entries: usize) -> Local {
        assert!(bht_entries.is_power_of_two(), "local BHT entries must be a power of two");
        assert!(pht_entries.is_power_of_two(), "local PHT entries must be a power of two");
        assert!(hist_bits <= 15, "local history register too wide");
        Local {
            histories: vec![0; bht_entries],
            counters: vec![2; pht_entries],
            hist_mask: ((1u32 << hist_bits) - 1) as u16,
            name: format!("local-{hist_bits}/{bht_entries}/{pht_entries}"),
        }
    }

    fn bht_slot(&self, pc: u32) -> usize {
        ((pc >> 2) as usize) & (self.histories.len() - 1)
    }

    fn pht_slot(&self, history: u16) -> usize {
        (history as usize) & (self.counters.len() - 1)
    }
}

impl Predictor for Local {
    #[inline]
    fn predict(&mut self, pc: u32) -> bool {
        let h = self.histories[self.bht_slot(pc)];
        self.counters[self.pht_slot(h)] >= 2
    }

    #[inline]
    fn update(&mut self, pc: u32, taken: bool) {
        let b = self.bht_slot(pc);
        let h = self.histories[b];
        let p = self.pht_slot(h);
        self.counters[p] = saturate(self.counters[p], taken);
        self.histories[b] = ((h << 1) | u16::from(taken)) & self.hist_mask;
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }
}

/// Profile-guided static prediction (the paper's related-work family,
/// reference 2: Young & Smith's static correlated prediction in its
/// simplest per-branch form): each branch is permanently predicted in its
/// profiled majority direction. Zero dynamic storage beyond the encoded
/// hint bits.
#[derive(Debug, Clone)]
pub struct StaticPerBranch {
    directions: std::collections::HashMap<u32, bool>,
    fallback: bool,
}

impl StaticPerBranch {
    /// Creates a static predictor from `(pc, majority_taken)` hints;
    /// unhinted branches predict `fallback`.
    #[must_use]
    pub fn new<I: IntoIterator<Item = (u32, bool)>>(hints: I, fallback: bool) -> StaticPerBranch {
        StaticPerBranch { directions: hints.into_iter().collect(), fallback }
    }

    /// Number of hinted branches.
    #[must_use]
    pub fn hinted(&self) -> usize {
        self.directions.len()
    }
}

impl Predictor for StaticPerBranch {
    #[inline]
    fn predict(&mut self, pc: u32) -> bool {
        self.directions.get(&pc).copied().unwrap_or(self.fallback)
    }

    #[inline]
    fn update(&mut self, _pc: u32, _taken: bool) {}

    fn name(&self) -> &str {
        "static-profile"
    }

    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }
}

/// McFarling's combining predictor (the paper's reference 3): a bimodal
/// and a gshare component, arbitrated per branch address by a table of
/// 2-bit *chooser* counters that train toward whichever component was
/// right when they disagree.
#[derive(Debug, Clone)]
pub struct Tournament {
    bimodal: Bimodal,
    gshare: Gshare,
    chooser: Vec<u8>,
    name: String,
}

impl Tournament {
    /// Creates a combining predictor; every table holds `entries`
    /// counters and gshare uses `hist_bits` of history.
    ///
    /// # Panics
    ///
    /// Panics on invalid component geometry (see [`Bimodal::new`] and
    /// [`Gshare::new`]).
    #[must_use]
    pub fn new(hist_bits: u32, entries: usize) -> Tournament {
        assert!(entries.is_power_of_two(), "tournament entries must be a power of two");
        Tournament {
            bimodal: Bimodal::new(entries),
            gshare: Gshare::new(hist_bits, entries),
            chooser: vec![2; entries],
            name: format!("tournament-{hist_bits}/{entries}"),
        }
    }

    fn slot(&self, pc: u32) -> usize {
        ((pc >> 2) as usize) & (self.chooser.len() - 1)
    }
}

impl Predictor for Tournament {
    #[inline]
    fn predict(&mut self, pc: u32) -> bool {
        // Chooser >= 2 selects gshare.
        if self.chooser[self.slot(pc)] >= 2 {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    #[inline]
    fn update(&mut self, pc: u32, taken: bool) {
        let b = self.bimodal.predict(pc);
        let g = self.gshare.predict(pc);
        if b != g {
            let i = self.slot(pc);
            self.chooser[i] = saturate(self.chooser[i], g == taken);
        }
        self.bimodal.update(pc, taken);
        self.gshare.update(pc, taken);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }
}

/// Configuration enum naming a predictor, used by the experiment harness
/// to sweep baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// Always predict not-taken.
    NotTaken,
    /// Always predict taken.
    Taken,
    /// Bimodal with the given number of 2-bit counters.
    Bimodal {
        /// Counter-table entries (power of two).
        entries: usize,
    },
    /// Gshare with the given history width and table size.
    Gshare {
        /// Global-history bits.
        hist_bits: u32,
        /// Pattern-history-table entries (power of two).
        entries: usize,
    },
    /// McFarling combining predictor (bimodal + gshare + chooser).
    Tournament {
        /// Global-history bits of the gshare component.
        hist_bits: u32,
        /// Entries per component table (power of two).
        entries: usize,
    },
    /// Two-level local-history predictor (PAg).
    Local {
        /// Local-history bits per branch.
        hist_bits: u32,
        /// Branch-history-table entries (power of two).
        bht_entries: usize,
        /// Pattern-history-table entries (power of two).
        pht_entries: usize,
    },
}

impl PredictorKind {
    /// The paper's Figure 6 baseline trio.
    pub const BASELINES: [PredictorKind; 3] = [
        PredictorKind::NotTaken,
        PredictorKind::Bimodal { entries: 2048 },
        PredictorKind::Gshare { hist_bits: 11, entries: 2048 },
    ];

    /// Instantiates the predictor.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry (see the constructors).
    #[must_use]
    pub fn build(self) -> Box<dyn Predictor> {
        match self {
            PredictorKind::NotTaken => Box::new(NotTaken),
            PredictorKind::Taken => Box::new(Taken),
            PredictorKind::Bimodal { entries } => Box::new(Bimodal::new(entries)),
            PredictorKind::Gshare { hist_bits, entries } => {
                Box::new(Gshare::new(hist_bits, entries))
            }
            PredictorKind::Tournament { hist_bits, entries } => {
                Box::new(Tournament::new(hist_bits, entries))
            }
            PredictorKind::Local { hist_bits, bht_entries, pht_entries } => {
                Box::new(Local::new(hist_bits, bht_entries, pht_entries))
            }
        }
    }

    /// Storage cost of the direction predictor in bits — the quantity
    /// behind the paper's area argument (Sec. 6: "drastically reduce area
    /// and still keep the original branch prediction rates").
    #[must_use]
    pub fn storage_bits(self) -> u64 {
        match self {
            PredictorKind::NotTaken | PredictorKind::Taken => 0,
            PredictorKind::Bimodal { entries } => 2 * entries as u64,
            PredictorKind::Gshare { hist_bits, entries } => {
                u64::from(hist_bits) + 2 * entries as u64
            }
            PredictorKind::Tournament { hist_bits, entries } => {
                // bimodal + gshare + chooser tables.
                2 * entries as u64 + (u64::from(hist_bits) + 2 * entries as u64)
                    + 2 * entries as u64
            }
            PredictorKind::Local { hist_bits, bht_entries, pht_entries } => {
                u64::from(hist_bits) * bht_entries as u64 + 2 * pht_entries as u64
            }
        }
    }

    /// The display label used in the paper's tables.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            PredictorKind::NotTaken => "not taken".to_owned(),
            PredictorKind::Taken => "taken".to_owned(),
            PredictorKind::Bimodal { entries } => {
                if entries == 2048 {
                    "bimodal".to_owned()
                } else {
                    format!("bi-{entries}")
                }
            }
            PredictorKind::Gshare { .. } => "gshare".to_owned(),
            PredictorKind::Tournament { .. } => "tournament".to_owned(),
            PredictorKind::Local { .. } => "local".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statics_are_constant() {
        let mut nt = NotTaken;
        let mut tk = Taken;
        for pc in [0u32, 4, 0xFFFC] {
            assert!(!nt.predict(pc));
            assert!(tk.predict(pc));
        }
        nt.update(0, true);
        assert!(!nt.predict(0));
    }

    #[test]
    fn saturating_counter_bounds() {
        assert_eq!(saturate(3, true), 3);
        assert_eq!(saturate(0, false), 0);
        assert_eq!(saturate(2, false), 1);
        assert_eq!(saturate(1, true), 2);
    }

    #[test]
    fn bimodal_learns_bias() {
        let mut p = Bimodal::new(16);
        for _ in 0..4 {
            p.update(0x100, false);
        }
        assert!(!p.predict(0x100));
        // Two takens flip a saturated-not-taken counter back past the
        // threshold.
        p.update(0x100, true);
        assert!(!p.predict(0x100));
        p.update(0x100, true);
        assert!(p.predict(0x100));
    }

    #[test]
    fn bimodal_aliasing_is_by_table_size() {
        let mut p = Bimodal::new(4);
        // pcs 0x0 and 0x10 alias in a 4-entry table ((pc>>2) & 3).
        for _ in 0..4 {
            p.update(0x0, false);
        }
        assert!(!p.predict(0x10), "aliased branch sees the trained counter");
    }

    #[test]
    fn gshare_separates_by_history() {
        // An alternating branch is hopeless for bimodal but perfect for
        // gshare once each history pattern's counter trains.
        let mut g = Gshare::new(4, 256);
        let mut correct = 0;
        let mut total = 0;
        let mut taken = false;
        for i in 0..400 {
            let pred = g.predict(0x200);
            if i >= 100 {
                total += 1;
                if pred == taken {
                    correct += 1;
                }
            }
            g.update(0x200, taken);
            taken = !taken;
        }
        assert_eq!(correct, total, "gshare must lock onto a period-2 pattern");
    }

    #[test]
    fn bimodal_mispredicts_alternating() {
        let mut p = Bimodal::new(64);
        let mut correct = 0;
        let mut taken = false;
        for _ in 0..400 {
            if p.predict(0x80) == taken {
                correct += 1;
            }
            p.update(0x80, taken);
            taken = !taken;
        }
        // A 2-bit counter oscillates on alternation; accuracy ~50% or worse.
        assert!(correct <= 220, "bimodal should not beat ~50% on alternation, got {correct}/400");
    }

    #[test]
    fn kind_builds_expected_names() {
        assert_eq!(PredictorKind::NotTaken.build().name(), "not taken");
        assert_eq!(PredictorKind::Bimodal { entries: 512 }.build().name(), "bi-512");
        assert_eq!(
            PredictorKind::Gshare { hist_bits: 11, entries: 2048 }.build().name(),
            "gshare-11/2048"
        );
        assert_eq!(PredictorKind::Bimodal { entries: 2048 }.label(), "bimodal");
        assert_eq!(PredictorKind::Bimodal { entries: 256 }.label(), "bi-256");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bimodal_rejects_non_power_of_two() {
        let _ = Bimodal::new(1000);
    }

    #[test]
    fn tournament_beats_both_components_on_a_mixed_workload() {
        // Branch A is heavily biased (bimodal's forte); branch B
        // alternates (gshare's forte). The chooser should route each to
        // the right component.
        let mut t = Tournament::new(6, 256);
        let mut bi = Bimodal::new(256);
        let mut g = Gshare::new(6, 256);
        let (mut ct, mut cb, mut cg) = (0u32, 0u32, 0u32);
        let mut alt = false;
        for i in 0..2000 {
            for (pc, taken) in [(0x100u32, true), (0x204, alt)] {
                if i >= 500 {
                    ct += u32::from(t.predict(pc) == taken);
                    cb += u32::from(bi.predict(pc) == taken);
                    cg += u32::from(g.predict(pc) == taken);
                }
                t.update(pc, taken);
                bi.update(pc, taken);
                g.update(pc, taken);
            }
            alt = !alt;
        }
        assert!(ct >= cb, "tournament {ct} vs bimodal {cb}");
        assert!(ct >= cg, "tournament {ct} vs gshare {cg}");
        // And it must be near-perfect: both patterns are learnable.
        assert!(ct as f64 >= 2.0 * 1500.0 * 0.98, "{ct}");
    }

    #[test]
    fn local_learns_per_branch_periods_without_interference() {
        // Two interleaved alternating branches destroy each other's
        // global history but have trivially learnable local histories.
        let mut l = Local::new(8, 256, 1024);
        let mut g = Gshare::new(8, 1024);
        let (mut cl, mut cg) = (0u32, 0u32);
        let mut phase = false;
        let mut lcg = 123456789u32;
        for i in 0..4000 {
            // A noisy third branch scrambles the global history register.
            lcg = lcg.wrapping_mul(1103515245).wrapping_add(12345);
            let noise = (lcg >> 16) & 1 == 0;
            for (pc, taken) in [(0x100u32, phase), (0x204, !phase), (0x308, noise)] {
                if i >= 1000 && pc != 0x308 {
                    cl += u32::from(l.predict(pc) == taken);
                    cg += u32::from(g.predict(pc) == taken);
                }
                l.update(pc, taken);
                g.update(pc, taken);
            }
            phase = !phase;
        }
        let total = 2 * 3000;
        assert_eq!(cl, total, "local must be perfect on period-2 branches");
        // With a *fixed* interleaving the global history positions stay
        // stable, so gshare can match (the paper's Figure-1 point is that
        // *variable* interleaving breaks this); local must never lose.
        assert!(cl >= cg, "local {cl} must not trail gshare {cg}");
    }

    #[test]
    fn static_per_branch_uses_hints() {
        let mut p = StaticPerBranch::new([(0x40u32, true), (0x44, false)], false);
        assert_eq!(p.hinted(), 2);
        assert!(p.predict(0x40));
        assert!(!p.predict(0x44));
        assert!(!p.predict(0x99), "fallback applies to unhinted branches");
        p.update(0x40, false);
        assert!(p.predict(0x40), "static prediction never re-trains");
    }

    #[test]
    fn tournament_kind_builds() {
        let k = PredictorKind::Tournament { hist_bits: 11, entries: 1024 };
        assert_eq!(k.build().name(), "tournament-11/1024");
        assert_eq!(k.label(), "tournament");
        assert_eq!(k.storage_bits(), 2048 + (11 + 2048) + 2048);
    }

    #[test]
    fn storage_bits_reported() {
        assert_eq!(PredictorKind::NotTaken.storage_bits(), 0);
        assert_eq!(PredictorKind::Bimodal { entries: 2048 }.storage_bits(), 4096);
        assert_eq!(
            PredictorKind::Gshare { hist_bits: 11, entries: 2048 }.storage_bits(),
            11 + 4096
        );
    }
}
