#![warn(missing_docs)]

//! General-purpose branch predictors for the ASBR baseline architecture.
//!
//! The paper (Sec. 8) compares ASBR against three general-purpose
//! predictors:
//!
//! * **not taken** — "the default in many embedded processors that lack
//!   branch predictors";
//! * **bimodal** — 2048 two-bit saturating counters + a 2048-entry branch
//!   target buffer ([McFarling, TN-36]);
//! * **gshare** — a two-level global-history predictor with an 11-bit
//!   history register, a 2048-entry pattern history table, and a
//!   2048-entry BTB.
//!
//! and, for Figure 11, small *auxiliary* bimodal predictors (512/256
//! entries with a quarter-size BTB) covering the branches ASBR does not
//! fold.
//!
//! This crate provides those predictors behind the [`Predictor`] trait, a
//! parameterized [`Btb`], per-branch [`AccuracyTracker`] accounting, and a
//! [`PredictorKind`] configuration enum used by the experiment harness.
//!
//! # Examples
//!
//! ```
//! use asbr_bpred::{Predictor, PredictorKind};
//!
//! let mut p = PredictorKind::Bimodal { entries: 512 }.build();
//! // A heavily-biased branch trains quickly:
//! for _ in 0..4 { let _ = p.predict(0x40); p.update(0x40, true); }
//! assert!(p.predict(0x40));
//! ```

mod accuracy;
mod btb;
mod predictors;

pub use accuracy::{AccuracyTracker, BranchRecord};
pub use btb::{Btb, BtbStats, ReturnStack};
pub use predictors::{
    Bimodal, Gshare, Local, NotTaken, PredictorKind, StaticPerBranch, Taken, Tournament,
};

/// A dynamic conditional-branch direction predictor.
///
/// `predict` is consulted in the fetch stage; `update` is applied when the
/// branch resolves in the execute stage. Implementations are free to keep
/// global state (e.g. gshare's history register), which `update` advances
/// in program order — accurate for an in-order, single-issue pipeline where
/// branches resolve before the next branch is predicted... except for the
/// 1–2 cycle window the pipeline itself models; this matches the classic
/// trace-driven evaluation style of the paper.
///
/// Predictors are `Send + Sync` by contract: they are plain table state
/// (no interior mutability, no shared handles), which is what lets the
/// batch engine shard lanes across threads and sampled simulation run
/// its checkpointed windows concurrently — a `Box<dyn Predictor>` rides
/// inside both a lane and a [`Checkpoint`](see `asbr-sim`), so those
/// structures inherit thread-safety from this bound.
pub trait Predictor: std::fmt::Debug + Send + Sync {
    /// Predicted direction (`true` = taken) for a conditional branch at
    /// `pc`.
    fn predict(&mut self, pc: u32) -> bool;

    /// Trains the predictor with the resolved direction of the branch at
    /// `pc`.
    fn update(&mut self, pc: u32, taken: bool);

    /// Short human-readable name, e.g. `"gshare"` or `"bi-512"`.
    fn name(&self) -> &str;

    /// Clones the predictor behind the trait object — snapshotting
    /// trained state for sampled simulation (functional warming carries a
    /// predictor along the architectural path and checkpoints clone it).
    fn clone_box(&self) -> Box<dyn Predictor>;
}
