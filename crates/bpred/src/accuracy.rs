//! Per-branch prediction accuracy accounting.
//!
//! The paper's Figures 7, 9 and 10 report, for each selected branch, its
//! execution count and the accuracy each general-purpose predictor achieves
//! on it. [`AccuracyTracker`] collects exactly that.

use std::collections::HashMap;

/// Counters for one static branch (identified by its PC).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchRecord {
    /// Dynamic executions.
    pub executed: u64,
    /// Executions predicted correctly.
    pub correct: u64,
    /// Executions that were taken.
    pub taken: u64,
}

impl BranchRecord {
    /// Prediction accuracy in `[0, 1]`; `0.0` when never executed.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.correct as f64 / self.executed as f64
        }
    }

    /// Fraction of executions that were taken.
    #[must_use]
    pub fn taken_rate(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.taken as f64 / self.executed as f64
        }
    }
}

/// Accumulates per-branch and aggregate prediction outcomes.
///
/// # Examples
///
/// ```
/// use asbr_bpred::AccuracyTracker;
///
/// let mut t = AccuracyTracker::new();
/// t.record(0x40, true, true);   // predicted taken, was taken
/// t.record(0x40, false, true);  // predicted not-taken, was taken
/// assert_eq!(t.branch(0x40).unwrap().executed, 2);
/// assert_eq!(t.overall_accuracy(), 0.5);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccuracyTracker {
    branches: HashMap<u32, BranchRecord>,
    total: BranchRecord,
}

impl AccuracyTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> AccuracyTracker {
        AccuracyTracker::default()
    }

    /// Rebuilds a tracker from per-branch records (e.g. deserialized from
    /// the experiment result cache). The aggregate is recomputed; records
    /// for the same PC are summed.
    pub fn from_records<I: IntoIterator<Item = (u32, BranchRecord)>>(records: I) -> AccuracyTracker {
        let mut t = AccuracyTracker::new();
        for (pc, r) in records {
            let rec = t.branches.entry(pc).or_default();
            for dst in [rec, &mut t.total] {
                dst.executed += r.executed;
                dst.correct += r.correct;
                dst.taken += r.taken;
            }
        }
        t
    }

    /// Records one dynamic branch: the direction that was predicted and
    /// the direction that actually resolved.
    pub fn record(&mut self, pc: u32, predicted_taken: bool, taken: bool) {
        let rec = self.branches.entry(pc).or_default();
        for r in [rec, &mut self.total] {
            r.executed += 1;
            r.taken += u64::from(taken);
            r.correct += u64::from(predicted_taken == taken);
        }
    }

    /// The record for the branch at `pc`, if it ever executed.
    #[must_use]
    pub fn branch(&self, pc: u32) -> Option<&BranchRecord> {
        self.branches.get(&pc)
    }

    /// Aggregate record over all branches.
    #[must_use]
    pub fn total(&self) -> BranchRecord {
        self.total
    }

    /// Aggregate accuracy over all dynamic branches (the paper's `Acc`
    /// column in Figure 6).
    #[must_use]
    pub fn overall_accuracy(&self) -> f64 {
        self.total.accuracy()
    }

    /// Iterates over `(pc, record)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &BranchRecord)> {
        self.branches.iter().map(|(&pc, r)| (pc, r))
    }

    /// Branches sorted by descending execution count — the "most frequently
    /// executed" view used when selecting ASBR candidates.
    #[must_use]
    pub fn hottest(&self) -> Vec<(u32, BranchRecord)> {
        let mut v: Vec<_> = self.branches.iter().map(|(&pc, &r)| (pc, r)).collect();
        v.sort_by(|a, b| b.1.executed.cmp(&a.1.executed).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_reports_zero() {
        let t = AccuracyTracker::new();
        assert_eq!(t.overall_accuracy(), 0.0);
        assert!(t.branch(0).is_none());
        assert_eq!(t.total().executed, 0);
    }

    #[test]
    fn per_branch_and_total_stay_consistent() {
        let mut t = AccuracyTracker::new();
        t.record(0x10, true, true);
        t.record(0x10, true, false);
        t.record(0x20, false, false);
        let a = t.branch(0x10).unwrap();
        let b = t.branch(0x20).unwrap();
        assert_eq!(a.executed + b.executed, t.total().executed);
        assert_eq!(a.correct + b.correct, t.total().correct);
        assert_eq!(a.taken + b.taken, t.total().taken);
        assert!((t.overall_accuracy() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn taken_rate() {
        let mut t = AccuracyTracker::new();
        t.record(0x10, false, true);
        t.record(0x10, false, true);
        t.record(0x10, false, false);
        assert!((t.branch(0x10).unwrap().taken_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hottest_orders_by_execution_count() {
        let mut t = AccuracyTracker::new();
        for _ in 0..5 {
            t.record(0x30, false, false);
        }
        for _ in 0..9 {
            t.record(0x10, false, false);
        }
        t.record(0x20, false, false);
        let hot = t.hottest();
        assert_eq!(hot[0].0, 0x10);
        assert_eq!(hot[1].0, 0x30);
        assert_eq!(hot[2].0, 0x20);
    }
}
