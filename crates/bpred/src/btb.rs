//! Branch target buffer.

use core::fmt;

/// BTB lookup/update statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BtbStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that returned a target.
    pub hits: u64,
}

impl BtbStats {
    /// Hit rate in `[0, 1]`; `1.0` when there were no lookups.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

impl fmt::Display for BtbStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} lookups, {:.2}% hit", self.lookups, self.hit_rate() * 100.0)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BtbEntry {
    valid: bool,
    tag: u32,
    target: u32,
}

/// A direct-mapped branch target buffer.
///
/// Caches the target address of taken branches so the fetch stage can
/// redirect on a taken prediction. A taken-predicted branch *without* a BTB
/// entry cannot redirect and is fetched fall-through (fixed at execute) —
/// which is why the paper scales the BTB with the predictor (2048 entries
/// baseline, a quarter of that for the ASBR auxiliary predictors).
///
/// # Examples
///
/// ```
/// use asbr_bpred::Btb;
///
/// let mut btb = Btb::new(64);
/// assert_eq!(btb.lookup(0x100), None);
/// btb.update(0x100, 0x200);
/// assert_eq!(btb.lookup(0x100), Some(0x200));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<BtbEntry>,
    stats: BtbStats,
}

impl Btb {
    /// Creates an empty BTB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Btb {
        assert!(entries.is_power_of_two(), "BTB entries must be a power of two");
        Btb { entries: vec![BtbEntry::default(); entries], stats: BtbStats::default() }
    }

    fn slot(&self, pc: u32) -> usize {
        ((pc >> 2) as usize) & (self.entries.len() - 1)
    }

    /// Looks up the cached target for the branch at `pc`.
    #[inline]
    pub fn lookup(&mut self, pc: u32) -> Option<u32> {
        self.stats.lookups += 1;
        let e = self.entries[self.slot(pc)];
        if e.valid && e.tag == pc {
            self.stats.hits += 1;
            Some(e.target)
        } else {
            None
        }
    }

    /// Installs/refreshes the target of a resolved taken branch.
    #[inline]
    pub fn update(&mut self, pc: u32, target: u32) {
        let slot = self.slot(pc);
        self.entries[slot] = BtbEntry { valid: true, tag: pc, target };
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Storage cost in bits of a BTB with `entries` slots: a full 32-bit
    /// tag, a 32-bit target and a valid bit per entry.
    #[must_use]
    pub fn storage_bits(entries: usize) -> u64 {
        entries as u64 * (32 + 32 + 1)
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> BtbStats {
        self.stats
    }
}

/// A return-address stack predicting `jr ra` targets.
///
/// Not part of the paper's baseline (embedded cores of the era rarely had
/// one); provided as an optional microarchitectural extension so the
/// harness can measure how much of the call-heavy G.721's overhead is
/// return-flush cost rather than conditional-branch cost.
///
/// # Examples
///
/// ```
/// use asbr_bpred::ReturnStack;
///
/// let mut ras = ReturnStack::new(8);
/// ras.push(0x104);
/// assert_eq!(ras.pop(), Some(0x104));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct ReturnStack {
    stack: Vec<u32>,
    capacity: usize,
}

impl ReturnStack {
    /// Creates an empty stack holding up to `capacity` return addresses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> ReturnStack {
        assert!(capacity > 0, "return stack needs at least one entry");
        ReturnStack { stack: Vec::with_capacity(capacity), capacity }
    }

    /// Records a call's return address; the oldest entry is dropped when
    /// full (circular behaviour, matching hardware).
    #[inline]
    pub fn push(&mut self, return_addr: u32) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(return_addr);
    }

    /// Predicts the target of a return.
    #[inline]
    pub fn pop(&mut self) -> Option<u32> {
        self.stack.pop()
    }

    /// Current depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ras_lifo_order() {
        let mut ras = ReturnStack::new(4);
        ras.push(0x10);
        ras.push(0x20);
        assert_eq!(ras.pop(), Some(0x20));
        assert_eq!(ras.pop(), Some(0x10));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut ras = ReturnStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.depth(), 2);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None, "1 was dropped on overflow");
    }

    #[test]
    fn miss_then_hit() {
        let mut b = Btb::new(16);
        assert_eq!(b.lookup(0x40), None);
        b.update(0x40, 0x100);
        assert_eq!(b.lookup(0x40), Some(0x100));
        assert_eq!(b.stats().lookups, 2);
        assert_eq!(b.stats().hits, 1);
    }

    #[test]
    fn conflicting_branches_evict() {
        let mut b = Btb::new(4);
        b.update(0x00, 0xA0);
        b.update(0x10, 0xB0); // same slot in a 4-entry BTB
        assert_eq!(b.lookup(0x00), None, "evicted by the aliasing branch");
        assert_eq!(b.lookup(0x10), Some(0xB0));
    }

    #[test]
    fn tag_prevents_false_hits() {
        let mut b = Btb::new(4);
        b.update(0x00, 0xA0);
        assert_eq!(b.lookup(0x20), None, "same slot, different tag");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Btb::new(3);
    }
}
