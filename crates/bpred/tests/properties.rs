//! Property tests over the predictor implementations.

use asbr_bpred::{Bimodal, Btb, Gshare, Predictor};
use proptest::prelude::*;

proptest! {
    /// A 2-bit counter table converges on any constant-direction branch
    /// within two updates and stays converged.
    #[test]
    fn bimodal_converges_on_bias(pc in any::<u32>(), taken in any::<bool>()) {
        let mut p = Bimodal::new(1024);
        for _ in 0..4 {
            p.update(pc, taken);
        }
        for _ in 0..16 {
            prop_assert_eq!(p.predict(pc), taken);
            p.update(pc, taken);
        }
    }

    /// gshare locks onto any short periodic pattern (period <= history).
    #[test]
    fn gshare_learns_short_periods(period in 1usize..6, phase in 0usize..6) {
        let mut g = Gshare::new(8, 4096);
        let pattern: Vec<bool> = (0..period).map(|i| (i + phase) % 2 == 0).collect();
        let mut wrong_tail = 0;
        for i in 0..600 {
            let t = pattern[i % period];
            let pred = g.predict(0x4000);
            if i >= 500 && pred != t {
                wrong_tail += 1;
            }
            g.update(0x4000, t);
        }
        prop_assert_eq!(wrong_tail, 0, "gshare failed to lock onto period {}", period);
    }

    /// Prediction is a pure read: consecutive predicts without an update
    /// agree.
    #[test]
    fn predict_is_idempotent(pcs in proptest::collection::vec(any::<u32>(), 1..50)) {
        let mut b = Bimodal::new(256);
        let mut g = Gshare::new(9, 512);
        for pc in pcs {
            prop_assert_eq!(b.predict(pc), b.predict(pc));
            prop_assert_eq!(g.predict(pc), g.predict(pc));
        }
    }

    /// The BTB returns exactly the last installed target for a PC, or
    /// nothing after an aliasing eviction — never a wrong target.
    #[test]
    fn btb_never_lies(ops in proptest::collection::vec((any::<u16>(), any::<u32>()), 1..200)) {
        let mut btb = Btb::new(64);
        let mut model = std::collections::HashMap::new();
        for (pc16, target) in ops {
            let pc = u32::from(pc16) << 2;
            btb.update(pc, target);
            model.insert(pc, target);
            if let Some(hit) = btb.lookup(pc) {
                prop_assert_eq!(hit, model[&pc]);
            }
        }
    }
}
