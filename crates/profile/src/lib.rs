#![warn(missing_docs)]

//! Profiling and benefit-ranked ASBR branch selection.
//!
//! The paper selects BIT branches by profiling: "A detailed analysis of
//! all benchmarks has been performed and the set of branches that are
//! highly beneficial for folding have been identified by profiling"
//! (Sec. 8), prioritising **frequently executed, hard-to-predict**
//! branches whose def→branch distance meets the pipeline threshold
//! (Secs. 5, 6).
//!
//! [`profile`] runs a workload once on the functional interpreter,
//! recording per static branch: execution count, taken rate, dynamic
//! def→branch distance histogram, and the trace-driven accuracy of any
//! number of candidate predictors (this powers the paper's per-branch
//! tables, Figures 7/9/10). [`select_branches`] then ranks foldable
//! branches by `foldable executions × misprediction rate` and returns the
//! top-N program counters to install in the Branch Identification Table.
//!
//! # Examples
//!
//! ```
//! use asbr_bpred::PredictorKind;
//! use asbr_profile::{profile, select_branches, SelectionConfig};
//! use asbr_workloads::Workload;
//!
//! let w = Workload::AdpcmEncode;
//! let prog = w.program();
//! let report = profile(&prog, &w.input(400), &[PredictorKind::Bimodal { entries: 2048 }])?;
//! let picks = select_branches(&report, &prog, &SelectionConfig::default());
//! assert!(!picks.is_empty());
//! # Ok::<(), asbr_sim::SimError>(())
//! ```

use asbr_asm::Program;
use asbr_bpred::{Predictor, PredictorKind};
use asbr_isa::{Instr, Reg, NUM_REGS};
use asbr_sim::{Interp, SimError, SimHooks};
use std::collections::HashMap;

/// Distance histogram buckets: exact counts for 0..=15 and a 16+ bucket.
pub const DIST_BUCKETS: usize = 17;

/// Profile record for one static branch.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchStats {
    /// Branch address.
    pub pc: u32,
    /// Dynamic executions.
    pub exec: u64,
    /// Taken executions.
    pub taken: u64,
    /// Whether the branch is of the zero-comparison (foldable) family.
    pub zero_compare: bool,
    /// Histogram of dynamic def→branch distances (instructions between
    /// the predicate definition and the branch); index 16 collects ≥16.
    pub dist_histogram: [u64; DIST_BUCKETS],
    /// Trace-driven accuracy per requested predictor, parallel to the
    /// `predictors` argument of [`profile`].
    pub accuracy: Vec<f64>,
}

impl BranchStats {
    /// Fraction of executions that were taken.
    #[must_use]
    pub fn taken_rate(&self) -> f64 {
        if self.exec == 0 {
            0.0
        } else {
            self.taken as f64 / self.exec as f64
        }
    }

    /// Executions whose dynamic def→branch distance met `threshold`
    /// (these would fold; the rest fall back to the auxiliary predictor).
    #[must_use]
    pub fn foldable_execs(&self, threshold: u32) -> u64 {
        let t = (threshold as usize).min(DIST_BUCKETS - 1);
        self.dist_histogram[t..].iter().sum()
    }
}

/// Output of one profiling run.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    branches: Vec<BranchStats>,
    /// Total dynamic instructions.
    pub instructions: u64,
    /// Labels of the profiled predictors, parallel to
    /// [`BranchStats::accuracy`].
    pub predictor_labels: Vec<String>,
}

impl ProfileReport {
    /// All profiled branches, sorted by descending execution count.
    #[must_use]
    pub fn branches(&self) -> &[BranchStats] {
        &self.branches
    }

    /// The record for the branch at `pc`.
    #[must_use]
    pub fn branch(&self, pc: u32) -> Option<&BranchStats> {
        self.branches.iter().find(|b| b.pc == pc)
    }

    /// Total dynamic conditional branches.
    #[must_use]
    pub fn total_branch_execs(&self) -> u64 {
        self.branches.iter().map(|b| b.exec).sum()
    }
}

struct Collector {
    predictors: Vec<Box<dyn Predictor>>,
    last_write: [u64; NUM_REGS],
    records: HashMap<u32, Rec>,
}

struct Rec {
    exec: u64,
    taken: u64,
    zero_compare: bool,
    dist: [u64; DIST_BUCKETS],
    correct: Vec<u64>,
}

impl SimHooks for Collector {
    fn on_branch(&mut self, pc: u32, instr: Instr, taken: bool, icount: u64) {
        let zero_compare = instr
            .branch()
            .and_then(|b| b.zero_compare)
            .map(|(_, rs)| rs);
        let n = self.predictors.len();
        let rec = self.records.entry(pc).or_insert_with(|| Rec {
            exec: 0,
            taken: 0,
            zero_compare: zero_compare.is_some(),
            dist: [0; DIST_BUCKETS],
            correct: vec![0; n],
        });
        rec.exec += 1;
        rec.taken += u64::from(taken);
        if let Some(rs) = zero_compare {
            let last = self.last_write[usize::from(rs)];
            // Instructions strictly between the def and the branch; a
            // never-written register counts as "far".
            let d = if last == 0 {
                DIST_BUCKETS as u64
            } else {
                icount - last - 1
            };
            rec.dist[(d as usize).min(DIST_BUCKETS - 1)] += 1;
        }
        for (p, c) in self.predictors.iter_mut().zip(&mut rec.correct) {
            let predicted = p.predict(pc);
            if predicted == taken {
                *c += 1;
            }
            p.update(pc, taken);
        }
    }

    fn on_reg_write(&mut self, reg: Reg, _value: u32, icount: u64) {
        self.last_write[usize::from(reg)] = icount;
    }
}

/// Profiles `program` on `input`, measuring each candidate predictor in
/// `predictors` trace-driven.
///
/// # Errors
///
/// Returns [`SimError`] if the guest faults or fails to halt within a
/// generous instruction budget.
pub fn profile(
    program: &Program,
    input: &[i32],
    predictors: &[PredictorKind],
) -> Result<ProfileReport, SimError> {
    let mut interp = Interp::new(program)?;
    interp.feed_input(input.iter().copied());
    let mut collector = Collector {
        predictors: predictors.iter().map(|&k| k.build()).collect(),
        last_write: [0; NUM_REGS],
        records: HashMap::new(),
    };
    let summary = interp.run_observed(2_000_000_000, &mut collector)?;

    let mut branches: Vec<BranchStats> = collector
        .records
        .into_iter()
        .map(|(pc, r)| BranchStats {
            pc,
            exec: r.exec,
            taken: r.taken,
            zero_compare: r.zero_compare,
            dist_histogram: r.dist,
            accuracy: r.correct.iter().map(|&c| c as f64 / r.exec as f64).collect(),
        })
        .collect();
    branches.sort_by(|a, b| b.exec.cmp(&a.exec).then(a.pc.cmp(&b.pc)));

    Ok(ProfileReport {
        branches,
        instructions: summary.instructions,
        predictor_labels: predictors.iter().map(|k| k.label()).collect(),
    })
}

/// Selection policy for the Branch Identification Table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionConfig {
    /// BIT capacity (the paper uses 16).
    pub bit_entries: usize,
    /// Fold threshold implied by the publish point (paper Sec. 5.2).
    pub threshold: u32,
    /// Index (into the profiled predictors) of the predictor whose
    /// misprediction rate ranks "hard to predict"; `None` ranks purely by
    /// foldable execution count.
    pub rank_against: Option<usize>,
    /// Minimum fraction of executions that must be foldable for a branch
    /// to be worth a BIT entry.
    pub min_fold_fraction: f64,
    /// Minimum execution count relative to the hottest eligible branch —
    /// "only the most frequently executed branches within the important
    /// application loops are targeted" (paper Sec. 7).
    pub min_exec_fraction: f64,
}

impl Default for SelectionConfig {
    /// The paper's setup: 16 entries, threshold 3 (EX/MEM forwarding),
    /// ranked against the first profiled predictor.
    fn default() -> SelectionConfig {
        SelectionConfig {
            bit_entries: 16,
            threshold: 3,
            rank_against: Some(0),
            min_fold_fraction: 0.5,
            min_exec_fraction: 0.005,
        }
    }
}

/// Picks the BIT branches: frequently executed, hard to predict, and
/// foldable at the configured threshold (paper Sec. 6).
///
/// Eligibility is *installability* ([`asbr_check::branch_is_installable`]):
/// a [`asbr_core::BitEntry`] must be statically extractable from a
/// decodable text location and consistent with the program image. It is
/// **not** the every-path static distance proof
/// ([`asbr_check::branch_is_provable`]) — soundness at run time is
/// guaranteed dynamically by the BDT validity counter (a fetch whose
/// predicate writer is still in flight declines to fold), so a branch
/// whose predicate is occasionally defined too close to it is still safe
/// to install. The static-distance property remains available through
/// `asbr-lint` as the strict "always folds" certificate; here the
/// profiled dynamic fold fraction (`min_fold_fraction`) is the
/// profitability filter that keeps rarely-foldable branches out of the
/// BIT. Returns the selected branch PCs, best first.
#[must_use]
pub fn select_branches(
    report: &ProfileReport,
    program: &Program,
    cfg: &SelectionConfig,
) -> Vec<u32> {
    let graph = asbr_flow::Cfg::build(program);
    let hottest = report
        .branches()
        .iter()
        .filter(|b| b.zero_compare)
        .map(|b| b.exec)
        .max()
        .unwrap_or(0);
    let exec_floor = ((hottest as f64 * cfg.min_exec_fraction) as u64).max(1);
    let mut scored: Vec<(f64, u64, u32)> = report
        .branches()
        .iter()
        .filter(|b| b.zero_compare && b.exec >= exec_floor)
        .filter(|b| asbr_check::branch_is_installable(program, &graph, b.pc))
        .filter_map(|b| {
            let foldable = b.foldable_execs(cfg.threshold);
            let fraction = foldable as f64 / b.exec as f64;
            if fraction < cfg.min_fold_fraction {
                return None;
            }
            let mispredict = match cfg.rank_against {
                Some(i) => 1.0 - b.accuracy.get(i).copied().unwrap_or(0.0),
                None => 1.0,
            };
            // Amdahl benefit: dynamic folds available x penalty avoided.
            // An always-predicted branch still folds usefully (it stops
            // polluting the predictor and leaves the pipe), so floor the
            // weight.
            let score = foldable as f64 * mispredict.max(0.02);
            (score > 0.0).then_some((score, b.exec, b.pc))
        })
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2)));
    scored.into_iter().take(cfg.bit_entries).map(|(_, _, pc)| pc).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asbr_asm::assemble;

    fn loop_program() -> Program {
        assemble(
            "
            main:   li   r4, 100
                    li   r6, 0
            loop:   addi r4, r4, -1
                    addi r6, r6, 1
                    nop
                    nop
            br:     bnez r4, loop
                    halt
            ",
        )
        .unwrap()
    }

    #[test]
    fn counts_and_taken_rate() {
        let prog = loop_program();
        let report =
            profile(&prog, &[], &[PredictorKind::NotTaken, PredictorKind::Bimodal { entries: 64 }])
                .unwrap();
        let br = report.branch(prog.symbol("br").unwrap()).unwrap();
        assert_eq!(br.exec, 100);
        assert_eq!(br.taken, 99);
        // not-taken accuracy = 1/100; bimodal learns the bias.
        assert!((br.accuracy[0] - 0.01).abs() < 1e-9);
        assert!(br.accuracy[1] > 0.9);
        assert_eq!(report.predictor_labels, vec!["not taken", "bi-64"]);
    }

    #[test]
    fn distance_histogram_reflects_code_shape() {
        let prog = loop_program();
        let report = profile(&prog, &[], &[]).unwrap();
        let br = report.branch(prog.symbol("br").unwrap()).unwrap();
        // Every execution sees the in-loop def: distance 3 (addi r6, nop,
        // nop between def and branch).
        assert_eq!(br.dist_histogram[3], 100);
        assert_eq!(br.foldable_execs(3), 100);
        assert_eq!(br.foldable_execs(4), 0);
    }

    #[test]
    fn selection_prefers_hot_foldable_branches() {
        let prog = loop_program();
        let report = profile(&prog, &[], &[PredictorKind::NotTaken]).unwrap();
        let picks = select_branches(
            &report,
            &prog,
            &SelectionConfig { threshold: 3, ..SelectionConfig::default() },
        );
        assert_eq!(picks, vec![prog.symbol("br").unwrap()]);
    }

    #[test]
    fn selection_respects_threshold() {
        // Tight loop: distance 0 -> nothing is foldable at threshold 3.
        let prog = assemble(
            "
            main:   li   r4, 50
            loop:   addi r4, r4, -1
            br:     bnez r4, loop
                    halt
            ",
        )
        .unwrap();
        let report = profile(&prog, &[], &[PredictorKind::NotTaken]).unwrap();
        let picks = select_branches(&report, &prog, &SelectionConfig::default());
        assert!(picks.is_empty());
    }

    #[test]
    fn selection_caps_at_bit_capacity() {
        // Ten distinct foldable branches, capacity 4.
        let mut src = String::from("main: li r4, 10\n");
        for i in 0..10 {
            src.push_str(&format!(
                "       li r{r}, 1\n        nop\n        nop\n        nop\n b{i}: beqz r{r}, skip{i}\n        nop\nskip{i}: nop\n",
                r = 8 + (i % 8),
            ));
        }
        src.push_str("halt\n");
        let prog = assemble(&src).unwrap();
        let report = profile(&prog, &[], &[PredictorKind::NotTaken]).unwrap();
        let picks = select_branches(
            &report,
            &prog,
            &SelectionConfig { bit_entries: 4, ..SelectionConfig::default() },
        );
        assert_eq!(picks.len(), 4);
    }

    #[test]
    fn workload_profile_finds_many_branches() {
        let w = asbr_workloads::Workload::AdpcmEncode;
        let report = profile(&w.program(), &w.input(300), &[PredictorKind::NotTaken]).unwrap();
        assert!(report.branches().len() >= 8, "{}", report.branches().len());
        assert!(report.total_branch_execs() > 1000);
    }
}
