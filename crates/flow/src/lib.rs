#![warn(missing_docs)]

//! Static control- and data-flow analysis for ASBR branch selection and
//! compiler support.
//!
//! Three pieces, mapping to Secs. 5.1 and 6 of the paper:
//!
//! * [`Cfg`] — a basic-block control-flow graph over a decoded program
//!   image;
//! * [`candidates`] — per-branch **def→branch distance** analysis: the
//!   minimum number of instruction slots, over all incoming paths, between
//!   the last definition of a branch's condition register and the branch
//!   itself. A branch is statically foldable for a given
//!   `PublishPoint`-derived threshold (see `asbr_sim`) when its
//!   distance is at least the threshold (paper Sec. 5);
//! * [`schedule::hoist_predicates`] — the compiler-support pass: within
//!   each basic block, predicate-defining instructions are moved as early
//!   as data and memory dependences allow, enlarging the distance exactly
//!   as the paper's "instruction scheduling" support does.
//!
//! # Examples
//!
//! ```
//! use asbr_asm::assemble;
//! use asbr_flow::{candidates, Cfg};
//!
//! let prog = assemble("
//! main:   li   r4, 10
//! loop:   addi r4, r4, -1
//!         nop
//!         nop
//!         nop
//!         bnez r4, loop
//!         halt
//! ")?;
//! let cfg = Cfg::build(&prog);
//! assert_eq!(cfg.blocks().len(), 3); // entry, loop body, exit
//! let cands = candidates(&prog);
//! assert_eq!(cands.len(), 1);
//! assert_eq!(cands[0].min_def_distance, 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod candidates;
mod cfg;
pub mod loops;
pub mod schedule;

pub use candidates::{candidates, defines_reg, CandidateBranch, CALL_CLOBBERS, DISTANCE_CAP};
pub use cfg::{Block, Cfg};
pub use loops::{call_aware_depths, loop_depths, select_static, StaticPick};
