//! Natural-loop detection and static (profile-free) branch selection.
//!
//! The paper states the application-specific properties are "identified
//! during compile time" (Sec. 1); profiling refines the choice but a
//! purely static selection is possible: loop-nesting depth is the classic
//! compile-time execution-frequency proxy, and the def→branch distance
//! analysis already decides foldability. [`select_static`] combines the
//! two, giving a BIT selection with no profiling run at all.

use std::collections::VecDeque;

use asbr_asm::Program;

use crate::{candidates, CandidateBranch, Cfg};

/// Finds back edges via an iterative DFS: an edge `u -> v` with `v` still
/// on the DFS stack.
fn back_edges(cfg: &Cfg) -> Vec<(usize, usize)> {
    let n = cfg.blocks().len();
    let mut color = vec![0u8; n]; // 0 white, 1 on stack, 2 done
    let mut edges = Vec::new();
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if color[root] != 0 {
            continue;
        }
        stack.push((root, 0));
        color[root] = 1;
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            let succs = &cfg.blocks()[u].succs;
            if *next < succs.len() {
                let v = succs[*next];
                *next += 1;
                match color[v] {
                    0 => {
                        color[v] = 1;
                        stack.push((v, 0));
                    }
                    1 => edges.push((u, v)),
                    _ => {}
                }
            } else {
                color[u] = 2;
                stack.pop();
            }
        }
    }
    edges
}

/// Per-block loop-nesting depth: the number of natural loops containing
/// each block (0 = not in any loop).
#[must_use]
pub fn loop_depths(cfg: &Cfg) -> Vec<u32> {
    let n = cfg.blocks().len();
    let mut depth = vec![0u32; n];
    for (tail, header) in back_edges(cfg) {
        // Natural loop of the back edge: header + every block that can
        // reach `tail` without passing through `header`.
        let mut in_loop = vec![false; n];
        in_loop[header] = true;
        let mut queue = VecDeque::new();
        if !in_loop[tail] {
            in_loop[tail] = true;
            queue.push_back(tail);
        }
        while let Some(b) = queue.pop_front() {
            for &p in &cfg.blocks()[b].preds {
                if !in_loop[p] {
                    in_loop[p] = true;
                    queue.push_back(p);
                }
            }
        }
        for (b, &inside) in in_loop.iter().enumerate() {
            if inside {
                depth[b] += 1;
            }
        }
    }
    depth
}

/// Per-block loop depth with call-graph awareness: a subroutine called
/// from inside a loop inherits the caller's depth (its body executes as
/// often as the call site). Without this, every branch inside G.721-style
/// shared numeric subroutines looks cold to static selection even though
/// it runs on every sample.
///
/// Call chains are propagated to a bounded depth, so recursion cannot
/// diverge.
#[must_use]
pub fn call_aware_depths(cfg: &Cfg) -> Vec<u32> {
    use asbr_isa::Instr;

    let n = cfg.blocks().len();
    let intra = loop_depths(cfg);

    // Call edges: (caller block, callee entry block).
    let mut call_edges: Vec<(usize, usize)> = Vec::new();
    for (i, instr) in cfg.instrs().iter().enumerate() {
        if let Instr::Jal { .. } = instr {
            let pc = cfg.pc_of(i);
            if let Some(t) = instr
                .direct_jump_target(pc)
                .and_then(|addr| cfg.index_of(addr))
            {
                call_edges.push((cfg.block_of(i), cfg.block_of(t)));
            }
        }
    }

    // Callee region: blocks reachable from the entry through successor
    // edges (returns have no static successors, so the walk stays inside
    // the callee and anything it tail-reaches).
    let region = |entry: usize| -> Vec<usize> {
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([entry]);
        seen[entry] = true;
        let mut out = Vec::new();
        while let Some(b) = queue.pop_front() {
            out.push(b);
            for &s in &cfg.blocks()[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    queue.push_back(s);
                }
            }
        }
        out
    };

    let mut bonus = vec![0u32; n];
    for _ in 0..6 {
        let mut changed = false;
        for &(caller, callee) in &call_edges {
            let inherited = intra[caller] + bonus[caller];
            if inherited > bonus[callee] {
                for b in region(callee) {
                    if inherited > bonus[b] {
                        bonus[b] = inherited;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    intra.iter().zip(&bonus).map(|(&d, &b)| d + b).collect()
}

/// A statically selected branch with its compile-time score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticPick {
    /// The candidate branch.
    pub candidate: CandidateBranch,
    /// Loop-nesting depth of the branch's block.
    pub loop_depth: u32,
}

/// Profile-free BIT selection: statically foldable branches (distance ≥
/// `threshold` on every enumerable path) ranked by loop-nesting depth
/// (deeper = assumed hotter), ties broken toward smaller distance slack.
///
/// Branches outside any loop are not selected — they execute too rarely
/// to earn a BIT entry (paper Sec. 7: "only the most frequently executed
/// branches within the important application loops").
#[must_use]
pub fn select_static(program: &Program, threshold: u32, bit_entries: usize) -> Vec<StaticPick> {
    let cfg = Cfg::build(program);
    let depths = call_aware_depths(&cfg);
    let mut picks: Vec<StaticPick> = candidates(program)
        .into_iter()
        .filter(|c| c.foldable(threshold))
        .map(|candidate| StaticPick {
            candidate,
            loop_depth: depths[cfg.block_of(candidate.index)],
        })
        .filter(|p| p.loop_depth > 0)
        .collect();
    picks.sort_by(|a, b| {
        b.loop_depth
            .cmp(&a.loop_depth)
            .then(a.candidate.pc.cmp(&b.candidate.pc))
    });
    picks.truncate(bit_entries);
    picks
}

#[cfg(test)]
mod tests {
    use super::*;
    use asbr_asm::assemble;

    #[test]
    fn simple_loop_depth() {
        let prog = assemble(
            "
            main:   li   r4, 3
            loop:   addi r4, r4, -1
                    nop
                    nop
            br:     bnez r4, loop
                    halt
            ",
        )
        .unwrap();
        let cfg = Cfg::build(&prog);
        let depths = loop_depths(&cfg);
        let br_block = cfg.block_of(cfg.index_of(prog.symbol("br").unwrap()).unwrap());
        assert_eq!(depths[br_block], 1);
        let entry = cfg.block_of(0);
        assert_eq!(depths[entry], 0);
    }

    #[test]
    fn nested_loops_stack_depth() {
        let prog = assemble(
            "
            main:   li   r4, 3
            outer:  li   r5, 3
            inner:  addi r5, r5, -1
                    nop
                    nop
            bi:     bnez r5, inner
                    addi r4, r4, -1
                    nop
                    nop
            bo:     bnez r4, outer
                    halt
            ",
        )
        .unwrap();
        let cfg = Cfg::build(&prog);
        let depths = loop_depths(&cfg);
        let bi = cfg.block_of(cfg.index_of(prog.symbol("bi").unwrap()).unwrap());
        let bo = cfg.block_of(cfg.index_of(prog.symbol("bo").unwrap()).unwrap());
        assert_eq!(depths[bi], 2, "inner branch sits in both loops");
        assert_eq!(depths[bo], 1);
    }

    #[test]
    fn static_selection_prefers_inner_loops() {
        let prog = assemble(
            "
            main:   li   r4, 3
            outer:  li   r5, 3
            inner:  addi r5, r5, -1
                    nop
                    nop
            bi:     bnez r5, inner
                    addi r4, r4, -1
                    nop
                    nop
            bo:     bnez r4, outer
                    halt
            ",
        )
        .unwrap();
        let picks = select_static(&prog, 2, 1);
        assert_eq!(picks.len(), 1);
        assert_eq!(picks[0].candidate.pc, prog.symbol("bi").unwrap());
        let both = select_static(&prog, 2, 8);
        assert_eq!(both.len(), 2);
    }

    #[test]
    fn non_loop_branches_not_selected() {
        let prog = assemble(
            "
            main:   li   r4, 1
                    nop
                    nop
                    nop
                    beqz r4, skip
                    nop
            skip:   halt
            ",
        )
        .unwrap();
        assert!(select_static(&prog, 3, 8).is_empty());
    }

    #[test]
    fn threshold_filters_tight_loops() {
        let prog = assemble(
            "
            main:   li   r4, 3
            loop:   addi r4, r4, -1
            br:     bnez r4, loop
                    halt
            ",
        )
        .unwrap();
        assert!(select_static(&prog, 3, 8).is_empty(), "distance 0 is unfoldable");
    }

    #[test]
    fn call_aware_depth_reaches_subroutines() {
        let prog = assemble(
            "
            main:   li   r4, 3
            loop:   jal  helper
                    addi r4, r4, -1
                    nop
                    nop
            br:     bnez r4, loop
                    halt
            helper: li   r9, 1
                    nop
                    nop
                    nop
            hb:     bnez r9, hret
                    nop
            hret:   jr   r31
            ",
        )
        .unwrap();
        let cfg = Cfg::build(&prog);
        let intra = loop_depths(&cfg);
        let aware = call_aware_depths(&cfg);
        let hb = cfg.block_of(cfg.index_of(prog.symbol("hb").unwrap()).unwrap());
        assert_eq!(intra[hb], 0, "intraprocedurally the helper is loop-free");
        assert_eq!(aware[hb], 1, "but it is called from a loop");
        // The subroutine branch is now statically selectable.
        let picks = select_static(&prog, 3, 8);
        assert!(picks.iter().any(|p| p.candidate.pc == prog.symbol("hb").unwrap()), "{picks:?}");
    }

    #[test]
    fn recursion_does_not_diverge() {
        let prog = assemble(
            "
            main:   jal  f
                    halt
            f:      nop
                    jal  f
                    jr   r31
            ",
        )
        .unwrap();
        let cfg = Cfg::build(&prog);
        let d = call_aware_depths(&cfg);
        assert_eq!(d.len(), cfg.blocks().len());
    }

    #[test]
    fn irreducible_like_graphs_do_not_panic() {
        // Two entries into a cycle via branches — loop analysis must stay
        // total.
        let prog = assemble(
            "
            main:   beqz r2, b
            a:      nop
            b:      nop
                    bnez r3, a
                    halt
            ",
        )
        .unwrap();
        let cfg = Cfg::build(&prog);
        let _ = loop_depths(&cfg);
    }
}
