//! Predicate-hoisting scheduler — the paper's Sec. 5.1 compiler support.
//!
//! "The compiler capability to schedule the instruction that defines the
//! registers involved in computing the branch condition is crucial." This
//! pass moves each branch-predicate-defining instruction as early within
//! its basic block as data and memory dependences allow, enlarging the
//! def→branch distance and thereby the set of foldable branches.

use asbr_asm::Program;
use asbr_isa::{Instr, Reg};

use crate::{candidates, Cfg};

/// Report for one hoisted predicate definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HoistReport {
    /// The branch whose predicate definition moved.
    pub branch_pc: u32,
    /// The definition's address before the pass.
    pub def_pc_before: u32,
    /// The definition's address after the pass.
    pub def_pc_after: u32,
    /// Def→branch distance before (same-block slots).
    pub distance_before: u32,
    /// Def→branch distance after.
    pub distance_after: u32,
}

/// Whether `instr` has effects that forbid any reordering across it.
#[must_use]
pub fn is_barrier(instr: Instr) -> bool {
    instr.is_control()
        || matches!(instr, Instr::CtrlW { .. } | Instr::Halt | Instr::Jal { .. })
}

/// Whether instruction `moving` may be hoisted above `over`.
///
/// This single predicate defines the scheduler's dependence model; the
/// `asbr-check` schedule validator re-uses it so that "legal reorder" means
/// exactly the same thing to the pass and to its verifier.
#[must_use]
pub fn may_swap(moving: Instr, over: Instr) -> bool {
    if is_barrier(over) || is_barrier(moving) {
        return false;
    }
    // Memory ordering: loads may be MMIO (side-effecting pops) and stores
    // are always ordered, so no memory op crosses another memory op.
    if (moving.is_load() || moving.is_store()) && (over.is_load() || over.is_store()) {
        return false;
    }
    // Stores must not cross anything that writes their sources; handled by
    // the generic dependence checks below (stores have no dst).
    let m_dst = moving.dst();
    let o_dst = over.dst();
    let reads = |i: Instr, r: Reg| i.srcs().iter().flatten().any(|&s| s == r);
    // RAW: moving reads what `over` writes.
    if let Some(d) = o_dst {
        if reads(moving, d) {
            return false;
        }
    }
    if let Some(d) = m_dst {
        // WAR: `over` reads what moving writes. WAW: both write the same.
        if reads(over, d) || o_dst == Some(d) {
            return false;
        }
    }
    true
}

/// Runs the hoisting pass, returning the rescheduled program and a report
/// per moved definition.
///
/// Only instructions *within* a basic block move, and control instructions
/// never move, so label addresses, branch displacements and jump targets
/// all remain valid; the pass re-encodes the reordered text in place.
#[must_use]
pub fn hoist_predicates(program: &Program) -> (Program, Vec<HoistReport>) {
    let cfg = Cfg::build(program);
    let mut instrs: Vec<Instr> = cfg.instrs().to_vec();
    let mut reports = Vec::new();

    for cand in candidates(program) {
        let bi = cfg.block_of(cand.index);
        let block = &cfg.blocks()[bi];
        // Find the last same-block def of the predicate register before
        // the branch.
        let Some(def_idx) = (block.start..cand.index)
            .rev()
            .find(|&i| instrs[i].dst() == Some(cand.reg))
        else {
            continue; // def is in another block; nothing to move here
        };
        let moving = instrs[def_idx];
        // Walk upward while the swap is legal.
        let mut dest = def_idx;
        while dest > block.start && may_swap(moving, instrs[dest - 1]) {
            dest -= 1;
        }
        if dest == def_idx {
            continue;
        }
        // Rotate `moving` up to `dest`.
        instrs[dest..=def_idx].rotate_right(1);
        reports.push(HoistReport {
            branch_pc: cand.pc,
            def_pc_before: cfg.pc_of(def_idx),
            def_pc_after: cfg.pc_of(dest),
            distance_before: (cand.index - def_idx - 1) as u32,
            distance_after: (cand.index - dest - 1) as u32,
        });
    }

    let new_program = reencode(program, &instrs);
    (new_program, reports)
}

/// Rebuilds a program image with `instrs` substituted for the text.
fn reencode(program: &Program, instrs: &[Instr]) -> Program {
    let words: Vec<u32> = instrs.iter().map(Instr::encode).collect();
    program.clone_with_text(words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asbr_asm::assemble;

    #[test]
    fn hoists_independent_def_above_fillers() {
        let prog = assemble(
            "
            main:   li   r4, 10
                    li   r6, 0
                    li   r7, 0
            loop:   addi r6, r6, 1
                    addi r4, r4, -1
                    addi r7, r7, 2
            br:     bnez r4, loop
                    halt
            ",
        )
        .unwrap();
        let before = candidates(&prog)[0].min_def_distance;
        assert_eq!(before, 1);
        let (new_prog, reports) = hoist_predicates(&prog);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].distance_before, 1);
        assert_eq!(reports[0].distance_after, 2, "hoisted to the block head");
        let after = candidates(&new_prog)[0].min_def_distance;
        assert_eq!(after, 2);
    }

    #[test]
    fn respects_raw_dependence() {
        // The def reads r5, which is produced immediately above: only one
        // slot of hoisting is possible.
        let prog = assemble(
            "
            main:   li   r9, 4
            loop:   addi r9, r9, -1
                    add  r5, r9, r9
                    nop
                    sub  r4, r5, r9
                    nop
        br:         bnez r4, loop
                    halt
            ",
        )
        .unwrap();
        let (new_prog, reports) = hoist_predicates(&prog);
        assert_eq!(reports.len(), 1);
        // `sub r4, r5, r9` may hoist above the nop but not above
        // `add r5, ...`.
        assert_eq!(reports[0].distance_before, 1);
        assert_eq!(reports[0].distance_after, 2);
        let c = candidates(&new_prog);
        let b = c.iter().find(|b| b.reg == asbr_isa::Reg::new(4)).unwrap();
        assert_eq!(b.min_def_distance, 2);
    }

    #[test]
    fn program_semantics_preserved() {
        let src = "
            main:   li   r4, 20
                    li   r2, 0
                    li   r6, 3
            loop:   add  r2, r2, r6
                    addi r6, r6, 1
                    sub  r4, r4, r6    # hmm depends on r6; partial hoist only
                    addi r2, r2, 5
            br:     bgtz r4, loop
                    halt
        ";
        let prog = assemble(src).unwrap();
        let (new_prog, _) = hoist_predicates(&prog);

        let mut a = asbr_sim::Interp::new(&prog).expect("valid text");
        a.run(100_000).unwrap();
        let mut b = asbr_sim::Interp::new(&new_prog).expect("valid text");
        b.run(100_000).unwrap();
        assert_eq!(a.reg(asbr_isa::Reg::V0), b.reg(asbr_isa::Reg::V0));
        assert_eq!(a.instructions(), b.instructions());
    }

    #[test]
    fn loads_do_not_cross_memory_ops() {
        let prog = assemble(
            "
            main:   la   r8, buf
            loop:   sw   r9, 0(r8)
                    lw   r4, 4(r8)
                    nop
            br:     beqz r4, out
                    j    loop
            out:    halt
            .data
            buf:    .word 0, 0
            ",
        )
        .unwrap();
        let (_, reports) = hoist_predicates(&prog);
        // The lw may hoist above nothing (sw is a memory op directly
        // above it): no report with increased distance beyond the nop...
        // actually the lw is *below* the sw and above the nop; moving up
        // is blocked immediately.
        assert!(reports.iter().all(|r| r.distance_after <= 1), "{reports:?}");
    }

    #[test]
    fn stores_and_barriers_never_move() {
        let prog = assemble(
            "
            main:   li   r4, 1
                    ctrlw 0, r4
            br:     bnez r4, main
                    halt
            ",
        )
        .unwrap();
        let (new_prog, _) = hoist_predicates(&prog);
        // ctrlw stayed put.
        assert_eq!(
            new_prog.instr_at(new_prog.text_base() + 8),
            prog.instr_at(prog.text_base() + 8)
        );
    }
}
