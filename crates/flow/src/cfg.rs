//! Basic-block control-flow graph construction.

use std::collections::BTreeSet;

use asbr_asm::Program;
use asbr_isa::{Instr, INSTR_BYTES};

/// A basic block: a maximal single-entry, single-exit straight-line run of
/// instructions, identified by half-open *instruction index* bounds into
/// the program text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First instruction index.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// Successor block indices. Empty for blocks ending in `halt`,
    /// indirect jumps (whose targets are statically unknown), or falling
    /// off the text end.
    pub succs: Vec<usize>,
    /// Predecessor block indices.
    pub preds: Vec<usize>,
}

impl Block {
    /// Number of instructions in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the block is empty (never produced by [`Cfg::build`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A control-flow graph over a program's text segment.
///
/// Call instructions (`jal`/`jalr`) are treated as block-internal
/// fall-through instructions (standard intra-procedural convention); their
/// register-clobbering effect is handled by the dataflow layer. Indirect
/// jumps (`jr`) terminate a block with no static successors, which keeps
/// every analysis conservative.
#[derive(Debug, Clone)]
pub struct Cfg {
    instrs: Vec<Instr>,
    text_base: u32,
    blocks: Vec<Block>,
    /// Map from instruction index to its containing block.
    block_of: Vec<usize>,
}

impl Cfg {
    /// Decodes the text segment and builds the graph.
    ///
    /// Undecodable words (data islands in text) are treated as `nop` for
    /// layout purposes; they never arise from the project assembler.
    #[must_use]
    pub fn build(program: &Program) -> Cfg {
        let instrs: Vec<Instr> = program
            .text()
            .iter()
            .map(|&w| Instr::decode(w).unwrap_or(Instr::NOP))
            .collect();
        let n = instrs.len();
        let text_base = program.text_base();

        // Leaders: entry, every branch/jump target, every instruction
        // after a control transfer (calls excepted) or halt.
        let mut leaders: BTreeSet<usize> = BTreeSet::new();
        if n > 0 {
            leaders.insert(0);
        }
        let index_of = |addr: u32| -> Option<usize> {
            if addr < text_base {
                return None;
            }
            let i = ((addr - text_base) / INSTR_BYTES) as usize;
            (i < n).then_some(i)
        };
        for (i, instr) in instrs.iter().enumerate() {
            let pc = text_base + INSTR_BYTES * i as u32;
            match instr {
                Instr::BranchZ { .. } | Instr::Beq { .. } | Instr::Bne { .. } => {
                    let info = instr.branch().expect("conditional branch");
                    if let Some(t) = index_of(info.target(pc)) {
                        leaders.insert(t);
                    }
                    if i + 1 < n {
                        leaders.insert(i + 1);
                    }
                }
                Instr::J { .. } => {
                    if let Some(t) = index_of(instr.direct_jump_target(pc).expect("direct")) {
                        leaders.insert(t);
                    }
                    if i + 1 < n {
                        leaders.insert(i + 1);
                    }
                }
                // Calls fall through (intra-procedural view), but the
                // callee entry is still a leader.
                Instr::Jal { .. } => {
                    if let Some(t) = index_of(instr.direct_jump_target(pc).expect("direct")) {
                        leaders.insert(t);
                    }
                }
                Instr::Jr { .. } | Instr::Halt
                    if i + 1 < n => {
                        leaders.insert(i + 1);
                    }
                _ => {}
            }
        }

        let starts: Vec<usize> = leaders.into_iter().collect();
        let mut blocks: Vec<Block> = starts
            .iter()
            .enumerate()
            .map(|(bi, &s)| Block {
                start: s,
                end: starts.get(bi + 1).copied().unwrap_or(n),
                succs: Vec::new(),
                preds: Vec::new(),
            })
            .collect();

        let mut block_of = vec![0usize; n];
        for (bi, b) in blocks.iter().enumerate() {
            for slot in &mut block_of[b.start..b.end] {
                *slot = bi;
            }
        }

        // Edges.
        let block_of_addr = |addr: u32| index_of(addr).map(|i| block_of[i]);
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (bi, b) in blocks.iter().enumerate() {
            if b.is_empty() {
                continue;
            }
            let last_idx = b.end - 1;
            let last = instrs[last_idx];
            let pc = text_base + INSTR_BYTES * last_idx as u32;
            match last {
                Instr::BranchZ { .. } | Instr::Beq { .. } | Instr::Bne { .. } => {
                    let info = last.branch().expect("branch");
                    if let Some(t) = block_of_addr(info.target(pc)) {
                        edges.push((bi, t));
                    }
                    if let Some(t) = block_of_addr(pc + INSTR_BYTES) {
                        edges.push((bi, t));
                    }
                }
                Instr::J { .. } => {
                    if let Some(t) =
                        block_of_addr(last.direct_jump_target(pc).expect("direct"))
                    {
                        edges.push((bi, t));
                    }
                }
                Instr::Jr { .. } | Instr::Jalr { .. } | Instr::Halt => {
                    // No static successors (returns/indirect/stop). A jalr
                    // in block-terminal position is rare; treating it like
                    // jr stays conservative.
                }
                _ => {
                    // Fall-through (includes jal: call then continue).
                    if let Some(t) = block_of_addr(pc + INSTR_BYTES) {
                        edges.push((bi, t));
                    }
                }
            }
        }
        for (from, to) in edges {
            if !blocks[from].succs.contains(&to) {
                blocks[from].succs.push(to);
                blocks[to].preds.push(from);
            }
        }

        Cfg { instrs, text_base, blocks, block_of }
    }

    /// The decoded instructions, indexed by text position.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// All blocks, ordered by start index.
    #[must_use]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The block containing instruction index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn block_of(&self, i: usize) -> usize {
        self.block_of[i]
    }

    /// The address of instruction index `i`.
    #[must_use]
    pub fn pc_of(&self, i: usize) -> u32 {
        self.text_base + INSTR_BYTES * i as u32
    }

    /// The instruction index of address `pc`, if inside the text segment.
    #[must_use]
    pub fn index_of(&self, pc: u32) -> Option<usize> {
        if pc < self.text_base || !pc.is_multiple_of(INSTR_BYTES) {
            return None;
        }
        let i = ((pc - self.text_base) / INSTR_BYTES) as usize;
        (i < self.instrs.len()).then_some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asbr_asm::assemble;

    fn cfg(src: &str) -> Cfg {
        Cfg::build(&assemble(src).unwrap())
    }

    #[test]
    fn straight_line_is_one_block() {
        let c = cfg("main: li r2, 1\naddi r2, r2, 1\nhalt");
        assert_eq!(c.blocks().len(), 1);
        assert_eq!(c.blocks()[0].len(), 3);
        assert!(c.blocks()[0].succs.is_empty());
    }

    #[test]
    fn loop_structure() {
        let c = cfg("
            main:   li r4, 3
            loop:   addi r4, r4, -1
                    bnez r4, loop
                    halt
        ");
        // Blocks: [li], [addi, bnez], [halt]
        assert_eq!(c.blocks().len(), 3);
        let body = &c.blocks()[1];
        assert!(body.succs.contains(&1), "back edge");
        assert!(body.succs.contains(&2), "exit edge");
        assert_eq!(body.preds.len(), 2, "entry + self");
    }

    #[test]
    fn diamond_structure() {
        let c = cfg("
            main:   beqz r2, else
                    li r3, 1
                    j join
            else:   li r3, 2
            join:   halt
        ");
        // [beqz], [li, j], [li(else)], [halt]
        assert_eq!(c.blocks().len(), 4);
        assert_eq!(c.blocks()[0].succs.len(), 2);
        assert_eq!(c.blocks()[3].preds.len(), 2);
    }

    #[test]
    fn call_falls_through_and_callee_is_leader() {
        let c = cfg("
            main:   jal f
                    halt
            f:      jr r31
        ");
        // jal does not end the entry block; f starts a block; jr has no succs.
        let entry = &c.blocks()[0];
        assert_eq!(entry.len(), 2, "jal + halt in one block");
        let f_block = c.blocks().iter().find(|b| b.start == 2).expect("callee block");
        assert!(f_block.succs.is_empty());
    }

    #[test]
    fn index_pc_round_trip() {
        let c = cfg("main: nop\nnop\nhalt");
        for i in 0..3 {
            assert_eq!(c.index_of(c.pc_of(i)), Some(i));
        }
        assert_eq!(c.index_of(c.pc_of(0) + 2), None);
        assert_eq!(c.index_of(0), None);
    }

    #[test]
    fn block_of_covers_every_instruction() {
        let c = cfg("
            main:   beqz r2, out
                    nop
            out:    halt
        ");
        for i in 0..c.instrs().len() {
            let b = &c.blocks()[c.block_of(i)];
            assert!(b.start <= i && i < b.end);
        }
    }
}
