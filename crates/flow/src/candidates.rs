//! Def→branch distance analysis and foldability classification.

use asbr_asm::Program;
use asbr_isa::{Cond, Instr, Reg};

use crate::Cfg;

/// Distances are capped here; a capped distance means "the definition is
/// far away on every path" — always foldable.
pub const DISTANCE_CAP: u32 = 64;

/// Registers a call may redefine (the caller-saved set of the ABI plus the
/// link register). Dataflow treats `jal`/`jalr` as defining all of them.
pub const CALL_CLOBBERS: [u8; 19] =
    [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 24, 25, 29, 31];

/// A zero-comparison conditional branch with its statically derived
/// ASBR-relevant properties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateBranch {
    /// Branch address.
    pub pc: u32,
    /// Instruction index in the text segment.
    pub index: usize,
    /// The predicate register (the Direction Index register).
    pub reg: Reg,
    /// The zero-comparison condition.
    pub cond: Cond,
    /// Minimum, over all statically enumerable incoming paths, of the
    /// number of instruction slots between the last definition of `reg`
    /// and the branch. Capped at [`DISTANCE_CAP`].
    pub min_def_distance: u32,
}

impl CandidateBranch {
    /// Whether early condition evaluation can fold this branch on every
    /// path for the given threshold (paper Sec. 5: distance must meet the
    /// pipeline-derived threshold).
    #[must_use]
    pub fn foldable(&self, threshold: u32) -> bool {
        self.min_def_distance >= threshold
    }
}

/// Whether `instr` (possibly) defines `reg` under the analysis's call
/// convention: a matching architectural destination, or a call
/// (`jal`/`jalr`), which is treated as defining every register in
/// [`CALL_CLOBBERS`].
///
/// This is the single def-semantics shared by the distance analysis here
/// and by downstream verifiers (the `asbr-check` prover) so that both
/// sides of a soundness argument agree on what a definition is.
#[must_use]
pub fn defines_reg(instr: Instr, reg: Reg) -> bool {
    if instr.dst() == Some(reg) {
        return true;
    }
    matches!(instr, Instr::Jal { .. } | Instr::Jalr { .. })
        && CALL_CLOBBERS.contains(&reg.index())
}

/// Minimum distance from the last def of `reg` looking backwards from
/// (exclusive) instruction index `from` in block `block`.
fn min_distance(
    cfg: &Cfg,
    block: usize,
    from: usize,
    reg: Reg,
    acc: u32,
    visited: &mut Vec<bool>,
) -> u32 {
    let b = &cfg.blocks()[block];
    let mut dist = acc;
    for i in (b.start..from).rev() {
        if defines_reg(cfg.instrs()[i], reg) {
            return dist.min(DISTANCE_CAP);
        }
        dist += 1;
        if dist >= DISTANCE_CAP {
            return DISTANCE_CAP;
        }
    }
    // Reached the block head without a def: continue into predecessors.
    if b.preds.is_empty() {
        // Program entry (register holds its reset value — foldable) or an
        // unknown indirect edge; both are reported as "far".
        return DISTANCE_CAP;
    }
    let mut best = DISTANCE_CAP;
    for &p in &b.preds {
        if visited[p] {
            // A cycle back into an already-open block: the def distance
            // along that path is at least one full loop body; treat as
            // unbounded on this path rather than infinite recursion.
            continue;
        }
        visited[p] = true;
        let pb_end = cfg.blocks()[p].end;
        best = best.min(min_distance(cfg, p, pb_end, reg, dist, visited));
        visited[p] = false;
    }
    best
}

/// Finds every zero-comparison conditional branch in `program` and its
/// minimum def→branch distance.
///
/// Two-register `beq`/`bne` branches are *not* candidates: the Branch
/// Direction Table pre-evaluates zero comparisons of a single register
/// (paper Fig. 8), so only the `BranchZ` family can be folded.
#[must_use]
pub fn candidates(program: &Program) -> Vec<CandidateBranch> {
    let cfg = Cfg::build(program);
    let mut out = Vec::new();
    for (i, &instr) in cfg.instrs().iter().enumerate() {
        let Instr::BranchZ { cond, rs, .. } = instr else { continue };
        let mut visited = vec![false; cfg.blocks().len()];
        let block = cfg.block_of(i);
        visited[block] = true;
        let d = min_distance(&cfg, block, i, rs, 0, &mut visited);
        out.push(CandidateBranch {
            pc: cfg.pc_of(i),
            index: i,
            reg: rs,
            cond,
            min_def_distance: d,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use asbr_asm::assemble;

    fn cands(src: &str) -> Vec<CandidateBranch> {
        candidates(&assemble(src).unwrap())
    }

    #[test]
    fn same_block_distance() {
        let c = cands(
            "
            main:   li   r4, 1
            loop:   addi r4, r4, -1
                    nop
                    nop
            br:     bnez r4, loop
                    halt
            ",
        );
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].min_def_distance, 2);
        assert!(c[0].foldable(2));
        assert!(!c[0].foldable(3));
        assert_eq!(c[0].reg, Reg::new(4));
        assert_eq!(c[0].cond, Cond::Ne);
    }

    #[test]
    fn distance_crosses_block_boundaries() {
        // Def in the entry block, branch in the next: 2 nops + the branch
        // block's 1 nop = distance 3.
        let c = cands(
            "
            main:   li   r4, 0
                    nop
                    nop
            next:   nop
                    beqz r4, done
                    nop
            done:   halt
            ",
        );
        let b = c.iter().find(|b| b.cond == Cond::Eq).unwrap();
        assert_eq!(b.min_def_distance, 3);
    }

    #[test]
    fn min_over_paths() {
        // Two paths into the branch block: one defines r4 just before the
        // join (distance 1 via `near`), one long before (distance 4 via
        // the fall-through). The minimum governs.
        let c = cands(
            "
            main:   beqz r2, near
                    li   r4, 7
                    nop
                    nop
                    j    test
            near:   li   r4, 1
            test:   nop
                    bnez r4, out
                    nop
            out:    halt
            ",
        );
        let b = c.iter().find(|b| b.reg == Reg::new(4)).unwrap();
        assert_eq!(b.min_def_distance, 1, "short path: li, one nop, then the branch");
    }

    #[test]
    fn never_defined_register_is_far() {
        let c = cands(
            "
            main:   nop
                    bltz r9, main
                    halt
            ",
        );
        assert_eq!(c[0].min_def_distance, DISTANCE_CAP);
        assert!(c[0].foldable(4));
    }

    #[test]
    fn calls_clobber_caller_saved() {
        // r2 (v0) is defined by the call itself: distance counts from the
        // jal.
        let c = cands(
            "
            main:   jal  f
                    nop
                    nop
                    beqz r2, main
                    halt
            f:      li   r2, 5
                    jr   r31
            ",
        );
        let b = c.iter().find(|b| b.reg == Reg::V0).unwrap();
        assert_eq!(b.min_def_distance, 2);
    }

    #[test]
    fn callee_saved_survives_calls() {
        // r16 (s0) is not clobbered by the call: its def is the li before
        // the call, so the call adds one slot of distance.
        let c = cands(
            "
            main:   li   r16, 3
                    jal  f
                    beqz r16, main
                    halt
            f:      jr   r31
            ",
        );
        let b = c.iter().find(|b| b.reg == Reg::new(16)).unwrap();
        assert_eq!(b.min_def_distance, 1);
    }

    #[test]
    fn loop_carried_def_distance() {
        // The only def of r4 inside the loop is right at the top; around
        // the back edge the distance from def to branch is 3 (nop, nop,
        // then branch)... and from the entry path the li is further away.
        let c = cands(
            "
            main:   li   r4, 9
                    nop
            loop:   addi r4, r4, -1
                    nop
                    nop
            br:     bnez r4, loop
                    halt
            ",
        );
        let b = c.iter().find(|b| b.reg == Reg::new(4)).unwrap();
        assert_eq!(b.min_def_distance, 2);
    }

    #[test]
    fn beq_bne_are_not_candidates() {
        let c = cands(
            "
            main:   beq  r1, r2, main
                    bne  r1, r2, main
                    bgez r1, main
                    halt
            ",
        );
        assert_eq!(c.len(), 1, "only the zero-compare branch qualifies");
        assert_eq!(c[0].cond, Cond::Gez);
    }
}
