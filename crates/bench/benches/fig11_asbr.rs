//! Figure 11 bench: ASBR-customized runs per benchmark × auxiliary
//! predictor, with the improvement series printed once.

use asbr_bench::{slug, BENCH_SAMPLES};
use asbr_experiments::runner::{run_asbr, run_baseline, AsbrOptions};
use asbr_workloads::Workload;
use criterion::{criterion_group, criterion_main, Criterion};

fn fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_asbr");
    group.sample_size(10);
    println!("\nFigure 11 series at {BENCH_SAMPLES} samples:");
    for w in Workload::ALL {
        for (aux, baseline) in asbr_experiments::fig11::AUXILIARIES {
            let base = run_baseline(w, baseline, BENCH_SAMPLES).expect("baseline runs");
            let run = run_asbr(w, aux, BENCH_SAMPLES, AsbrOptions::default()).expect("asbr runs");
            println!(
                "  {:<14} {:<10} cycles {:>9} (baseline {:>9})  impr {:+.1}%  folds {}",
                w.name(),
                aux.label(),
                run.summary.stats.cycles,
                base.stats.cycles,
                (1.0 - run.summary.stats.cycles as f64 / base.stats.cycles as f64) * 100.0,
                run.asbr.folds()
            );
            group.bench_function(
                format!("{}/{}", slug(w), aux.label().replace(' ', "_")),
                |b| {
                    b.iter(|| run_asbr(w, aux, BENCH_SAMPLES, AsbrOptions::default()));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig11);
criterion_main!(benches);
