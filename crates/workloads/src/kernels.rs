//! Executable versions of the paper's motivation code fragments.
//!
//! * [`fig2_kernel`] reproduces Figure 2 of the paper verbatim — the
//!   ADPCM-derived sequence `lh / subu / addu / sra / andi / bgez` whose
//!   branch depends directly on loaded input data, defeating statistical
//!   predictors but folding perfectly under ASBR (the def→branch distance
//!   is 3).
//! * [`fig1_kernel`] reproduces Figure 1 — the direct data correlation
//!   `if (c1) c4 = 1; … if (c4 != 0) …` chain with intervening nested
//!   branches that shift the correlated branch's position in a global
//!   history register.

use asbr_asm::{assemble, Program};

/// The Figure 2 kernel: copies input halfwords to a buffer, then scans
/// the buffer with the paper's exact instruction sequence, counting
/// values `>= threshold` (in `r2` at halt). The `bgez` at label
/// `br_fig2` is the input-data-dependent branch.
///
/// # Panics
///
/// Panics if the embedded source fails to assemble (covered by tests).
#[must_use]
pub fn fig2_kernel(threshold: i16) -> Program {
    let src = format!(
        "
        # Prologue: drain the MMIO input into a halfword buffer.
        main:   li   r28, 0xFFFF0000
                la   r4, buf
                li   r5, 0               # count
        fill:   lw   r9, 4(r28)
                beqz r9, scan_init
                lw   r9, 0(r28)
                sh   r9, 0(r4)
                addi r4, r4, 2
                addi r5, r5, 1
                j    fill

        # Scan loop: the paper's Figure 2 body.
        scan_init:
                la   r4, buf
                li   r11, {threshold}
                li   r2, 0               # count of values >= threshold
                li   r7, 0               # loop counter
        scan:   lh   r12, 0(r4)          # lh   r2, 0(r4)   (paper)
                sub  r3, r12, r11        # subu r3, r2, r11
                addi r4, r4, 2           # addu r4, r4, 2
                sra  r12, r3, 31         # sra  r2, r3, 31
                andi r13, r12, 0x0008    # andi r13, r2, 0x0008
        br_fig2: bgez r3, hit            # bgez r3, Label
                j    next
        hit:    addi r2, r2, 1
        next:   addi r7, r7, 1
                sub  r9, r7, r5
                bltz r9, scan
                sw   r2, 8(r28)
                halt
        .data
        buf:    .space 65536
        "
    );
    assemble(&src).expect("fig2 kernel assembles")
}

/// The Figure 1 kernel: evaluates the branch chain `B1..B5` over input
/// tuples `(c1, c2, c3, c5)`. `c4` is set by B1's taken path, so B4 is
/// *data-correlated* with B1 while B2/B3 vary the branch-history distance
/// between them; B5 is uncorrelated. Outputs the number of B4-taken
/// iterations.
///
/// # Panics
///
/// Panics if the embedded source fails to assemble (covered by tests).
#[must_use]
pub fn fig1_kernel() -> Program {
    assemble(
        "
        main:   li   r28, 0xFFFF0000
                li   r2, 0               # B4-taken count
        loop:   lw   r9, 4(r28)
                beqz r9, done
                lw   r10, 0(r28)         # c1
                lw   r11, 0(r28)         # c2
                lw   r12, 0(r28)         # c3
                lw   r13, 0(r28)         # c5
                li   r14, 0              # c4 = 0
        b1:     beqz r10, b2             # if (c1)  [B1]
                li   r14, 1              #   c4 = 1
                nop
        b2:     beqz r11, b4             # if (c2)  [B2]
                nop
        b3:     beqz r12, b4             # if (c3)  [B3]
                nop
                nop
        b4:     beqz r14, b5             # if (c4 != 0)  [B4] correlates with B1
                addi r2, r2, 1
        b5:     beqz r13, loop           # if (c5)  [B5] uncorrelated
                nop
                j    loop
        done:   sw   r2, 8(r28)
                halt
        ",
    )
    .expect("fig1 kernel assembles")
}

/// A bitwise CRC-32 (reflected, polynomial `0xEDB88320`) over the input
/// words' low bytes, emitting the running CRC after every byte.
///
/// The bit-loop's conditional (`XOR the polynomial iff the LSB is set`)
/// is a classic hard-to-predict data-dependent branch. The port hoists
/// the LSB test one slot and performs the unconditional shift between the
/// test and the branch — the Sec. 5.1 scheduling pattern — giving ASBR a
/// def→branch distance of 2.
///
/// # Panics
///
/// Panics if the embedded source fails to assemble (covered by tests).
#[must_use]
pub fn crc32_kernel() -> Program {
    assemble(
        "
        main:   li   r28, 0xFFFF0000
                li   r16, -1             # crc = 0xFFFFFFFF
                li   r17, 0xEDB88320     # polynomial
        byte_loop:
                lw   r9, 4(r28)
                beqz r9, done
                lw   r9, 0(r28)
                andi r9, r9, 0xFF
                xor  r16, r16, r9        # crc ^= byte
                li   r18, 8              # bit counter
        bit_loop:
                andi r19, r16, 1         # t = crc & 1   (scheduled early)
                srl  r16, r16, 1         # crc >>= 1     (independent filler)
                addi r18, r18, -1        # --bits        (independent filler)
        br_bit: beqz r19, no_poly        # the hard data-dependent branch
                xor  r16, r16, r17
        no_poly:
                bnez r18, bit_loop
                nor  r9, r16, r0         # ~crc
                sw   r9, 8(r28)
                j    byte_loop
        done:   halt
        ",
    )
    .expect("crc32 kernel assembles")
}

/// Reference CRC-32 matching [`crc32_kernel`]'s per-byte outputs.
#[must_use]
pub fn crc32_reference(bytes: &[i32]) -> Vec<i32> {
    let mut crc: u32 = 0xFFFF_FFFF;
    let mut out = Vec::with_capacity(bytes.len());
    for &b in bytes {
        crc ^= (b as u32) & 0xFF;
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xEDB8_8320;
            }
        }
        out.push(!crc as i32);
    }
    out
}

/// A G.711 µ-law encoder (port of Sun/MediaBench `linear2ulaw`): pops
/// 16-bit PCM samples, pushes 8-bit µ-law codes.
///
/// The 8-entry segment search is software-pipelined (paper Sec. 5.1):
/// the next table entry is preloaded and the loop-exit predicate computed
/// early, lifting both search branches to def→branch distance 5 so they
/// fold. The sign test stays data-chained to the sample load — it remains
/// an auxiliary-predictor branch, as the paper's methodology intends for
/// branches that fail the distance property.
///
/// # Panics
///
/// Panics if the embedded source fails to assemble (covered by tests).
#[must_use]
pub fn g711_ulaw_kernel() -> Program {
    assemble(
        "
        main:   li   r28, 0xFFFF0000
                la   r20, seg_end
        loop:   lw   r9, 4(r28)
                beqz r9, done
                lw   r9, 0(r28)          # pcm sample
                li   r11, 0xFF           # mask (positive)
                bgez r9, biased          # sign split (data-chained)
                li   r11, 0x7F
                li   r10, 0x84
                sub  r9, r10, r9         # val = BIAS - pcm
                j    seg_init
        biased: addi r9, r9, 0x84        # val = pcm + BIAS
        seg_init:
                li   r12, 0              # seg
                lw   r13, 0(r20)         # seg_end[0]
        seg_l:  sub  r14, r13, r9        # exit test value (scheduled early)
                addi r16, r12, 1         # next seg
                addi r15, r16, -8        # loop-exit predicate (scheduled early)
                sll  r17, r16, 2
                add  r17, r17, r20
                lw   r13, 0(r17)         # preload seg_end[seg+1] (padded table)
        br_seg: bgez r14, seg_done       # val <= seg_end[seg]? (folds)
                move r12, r16
        br_cont: bltz r15, seg_l         # seg < 8? (folds)
        seg_done:
                addi r14, r12, -8
                bltz r14, inseg          # saturated?
                li   r13, 0x7F
                xor  r13, r13, r11
                j    emit
        inseg:  sll  r13, r12, 4         # uval = seg << 4
                addi r14, r12, 3
                srav r15, r9, r14        # val >> (seg + 3)
                andi r15, r15, 0xF
                or   r13, r13, r15
                xor  r13, r13, r11
        emit:   andi r13, r13, 0xFF
                sw   r13, 8(r28)
                j    loop
        done:   halt
        .data
        seg_end:
                .word 0xFF, 0x1FF, 0x3FF, 0x7FF, 0xFFF, 0x1FFF, 0x3FFF, 0x7FFF
                .word 0x7FFFFFFF          # preload padding past the table
        ",
    )
    .expect("g711 ulaw kernel assembles")
}

/// Reference µ-law encoder matching [`g711_ulaw_kernel`]'s outputs.
#[must_use]
pub fn g711_ulaw_reference(samples: &[i32]) -> Vec<i32> {
    samples
        .iter()
        .map(|&s| i32::from(asbr_codecs::linear2ulaw(s as i16)))
        .collect()
}

/// A reactive frame-protocol parser — the paper's "control intensive
/// applications which are part of a typical reactive system".
///
/// Grammar: `0xAA <len> <len data bytes> <checksum>` where the checksum
/// is the low byte of the data sum. Emits `1` for every good frame, `2`
/// for a bad checksum, `3` for a sync error. The parser state register is
/// assigned at the *end* of each iteration and dispatched on at the top
/// of the next — a whole loop body of def→branch distance, so the state
/// dispatch branches fold under ASBR.
///
/// # Panics
///
/// Panics if the embedded source fails to assemble (covered by tests).
#[must_use]
pub fn protocol_kernel() -> Program {
    assemble(
        "
        # r16 = state (0 idle, 1 length, 2 data, 3 checksum)
        # r17 = bytes remaining in data, r18 = checksum accumulator
        main:   li   r28, 0xFFFF0000
                li   r16, 0
        loop:   lw   r9, 4(r28)
                beqz r9, done
                lw   r9, 0(r28)          # next byte
                andi r9, r9, 0xFF
        st_dispatch:
                beqz r16, st_idle        # state == IDLE (foldable dispatch)
                addi r10, r16, -1
                beqz r10, st_len
                addi r10, r16, -2
                beqz r10, st_data
                j    st_chk

        st_idle:
                addi r10, r9, -170       # sync byte 0xAA?
                bnez r10, bad_sync
                li   r16, 1
                j    loop
        bad_sync:
                li   r10, 3
                sw   r10, 8(r28)
                li   r16, 0
                j    loop

        st_len: move r17, r9             # length
                li   r18, 0
                li   r16, 2
                bnez r9, loop            # zero-length frame goes straight to checksum
                li   r16, 3
                j    loop

        st_data:
                add  r18, r18, r9
                addi r17, r17, -1
                li   r16, 2
                bnez r17, loop
                li   r16, 3
                j    loop

        st_chk: andi r18, r18, 0xFF
                sub  r10, r18, r9
                li   r11, 1
                beqz r10, chk_done       # checksum matches?
                li   r11, 2
        chk_done:
                sw   r11, 8(r28)
                li   r16, 0
                j    loop

        done:   halt
        ",
    )
    .expect("protocol kernel assembles")
}

/// Reference parser matching [`protocol_kernel`]'s outputs.
#[must_use]
pub fn protocol_reference(bytes: &[i32]) -> Vec<i32> {
    #[derive(Clone, Copy)]
    enum St {
        Idle,
        Len,
        Data,
        Chk,
    }
    let mut out = Vec::new();
    let mut st = St::Idle;
    let (mut remaining, mut sum) = (0i32, 0i32);
    for &raw in bytes {
        let b = raw & 0xFF;
        match st {
            St::Idle => {
                if b == 0xAA {
                    st = St::Len;
                } else {
                    out.push(3);
                }
            }
            St::Len => {
                remaining = b;
                sum = 0;
                st = if b != 0 { St::Data } else { St::Chk };
            }
            St::Data => {
                sum += b;
                remaining -= 1;
                if remaining == 0 {
                    st = St::Chk;
                }
            }
            St::Chk => {
                out.push(if (sum & 0xFF) == b { 1 } else { 2 });
                st = St::Idle;
            }
        }
    }
    out
}

/// Deterministic byte stream of frames (mostly good, some corrupted) plus
/// inter-frame noise, for the protocol kernel.
#[must_use]
pub fn protocol_input(n_frames: usize, seed: u64) -> Vec<i32> {
    let mut rng = crate::input::Lcg::new(seed);
    let mut out = Vec::new();
    for f in 0..n_frames {
        // Occasional line noise between frames.
        if rng.next_u32().is_multiple_of(5) {
            out.push(i32::from(rng.next_i16(100).unsigned_abs() % 160)); // never 0xAA
        }
        out.push(0xAA);
        let len = (rng.next_u32() % 12) as i32;
        out.push(len);
        let mut sum = 0i32;
        for _ in 0..len {
            let b = (rng.next_u32() & 0xFF) as i32;
            sum += b;
            out.push(b);
        }
        let mut chk = sum & 0xFF;
        if f % 7 == 3 {
            chk = (chk + 1) & 0xFF; // corrupt every 7th frame
        }
        out.push(chk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use asbr_sim::Interp;

    #[test]
    fn fig2_counts_values_over_threshold() {
        let prog = fig2_kernel(100);
        let mut it = Interp::new(&prog).unwrap();
        let input = [50, 150, 100, 99, 101, -7, 3000];
        it.feed_input(input);
        let run = it.run(1_000_000).unwrap();
        let expect = input.iter().filter(|&&v| v >= 100).count() as i32;
        assert_eq!(run.output, vec![expect]);
    }

    #[test]
    fn fig2_branch_is_data_dependent() {
        // Alternating input around the threshold makes br_fig2 alternate.
        let prog = fig2_kernel(0);
        assert!(prog.symbol("br_fig2").is_some());
        let mut it = Interp::new(&prog).unwrap();
        it.feed_input([1, -1, 1, -1, 1, -1]);
        let run = it.run(1_000_000).unwrap();
        assert_eq!(run.output, vec![3]);
    }

    #[test]
    fn crc32_guest_matches_reference() {
        let input: Vec<i32> = (0..200).map(|i| (i * 37 + 11) & 0xFF).collect();
        let mut it = Interp::new(&crc32_kernel()).unwrap();
        it.feed_input(input.iter().copied());
        let run = it.run(10_000_000).unwrap();
        assert_eq!(run.output, crc32_reference(&input));
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32 of "123456789" is 0xCBF43926.
        let input: Vec<i32> = b"123456789".iter().map(|&b| i32::from(b)).collect();
        let out = crc32_reference(&input);
        assert_eq!(*out.last().unwrap() as u32, 0xCBF4_3926);
        let mut it = Interp::new(&crc32_kernel()).unwrap();
        it.feed_input(input);
        let run = it.run(1_000_000).unwrap();
        assert_eq!(*run.output.last().unwrap() as u32, 0xCBF4_3926);
    }

    #[test]
    fn g711_guest_matches_reference() {
        let mut input: Vec<i32> = vec![0, 1, -1, 32767, -32768, 0x84, -0x84, 255, -255];
        input.extend((0..500).map(|i| ((i * 1103) % 65536) - 32768));
        let mut it = Interp::new(&g711_ulaw_kernel()).unwrap();
        it.feed_input(input.iter().copied());
        let run = it.run(10_000_000).unwrap();
        assert_eq!(run.output, g711_ulaw_reference(&input));
    }

    #[test]
    fn g711_guest_zero_encodes_to_ff() {
        let mut it = Interp::new(&g711_ulaw_kernel()).unwrap();
        it.feed_input([0]);
        let run = it.run(100_000).unwrap();
        assert_eq!(run.output, vec![0xFF]);
    }

    #[test]
    fn protocol_guest_matches_reference() {
        let input = protocol_input(50, 99);
        let mut it = Interp::new(&protocol_kernel()).unwrap();
        it.feed_input(input.iter().copied());
        let run = it.run(10_000_000).unwrap();
        assert_eq!(run.output, protocol_reference(&input));
        // The stream contains good, bad, and noise outcomes.
        assert!(run.output.contains(&1));
        assert!(run.output.contains(&2));
        assert!(run.output.contains(&3));
    }

    #[test]
    fn protocol_handles_degenerate_streams() {
        for input in [vec![], vec![0xAA], vec![0xAA, 0, 0], vec![1, 2, 3]] {
            let mut it = Interp::new(&protocol_kernel()).unwrap();
            it.feed_input(input.iter().copied());
            let run = it.run(1_000_000).unwrap();
            assert_eq!(run.output, protocol_reference(&input), "{input:?}");
        }
    }

    #[test]
    fn fig1_b4_follows_b1() {
        let prog = fig1_kernel();
        let mut it = Interp::new(&prog).unwrap();
        // Tuples (c1, c2, c3, c5): B4 taken iff c1 != 0.
        it.feed_input([1, 0, 0, 0, 0, 1, 1, 0, 1, 1, 0, 1]);
        let run = it.run(1_000_000).unwrap();
        assert_eq!(run.output, vec![2]);
    }
}
