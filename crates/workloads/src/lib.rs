#![warn(missing_docs)]

//! Guest programs and inputs for the ASBR evaluation.
//!
//! The paper evaluates on four MediaBench applications (Sec. 8): the IMA
//! ADPCM encoder/decoder and the G.721 encoder/decoder. The originals are
//! C programs compiled by gcc for SimpleScalar; lacking that toolchain we
//! hand-ported the same algorithms to this project's assembly (see the
//! `asm/` directory), and validate every guest against the
//! [`asbr_codecs`] golden references — byte-identical output is asserted
//! by this crate's tests.
//!
//! [`Workload`] names the four benchmarks and bundles their program
//! image, deterministic synthetic input (module [`input`]) and reference
//! output. Module [`kernels`] additionally provides executable versions
//! of the paper's *motivation* code fragments (Figures 1 and 2).
//!
//! # Examples
//!
//! Run the ADPCM encoder guest and check it against the reference codec:
//!
//! ```
//! use asbr_sim::Interp;
//! use asbr_workloads::Workload;
//!
//! let w = Workload::AdpcmEncode;
//! let input = w.input(200);
//! let mut interp = Interp::new(&w.program())?;
//! interp.feed_input(input.iter().copied());
//! let run = interp.run(100_000_000)?;
//! assert_eq!(run.output, w.reference_output(&input));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod input;
pub mod kernels;
mod workload;

pub use workload::Workload;
