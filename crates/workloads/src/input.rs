//! Deterministic synthetic PCM inputs.
//!
//! The paper ran MediaBench's audio files; we substitute fully
//! deterministic synthetic signals exercising the same quantizer decision
//! paths: a speech-like mixture (two slowly modulated tones plus noise and
//! pauses), pure tones, and noise. Reproducibility matters more than
//! realism here — the branch-behaviour *classes* (biased, alternating,
//! data-dependent) are what ASBR selection keys on.

/// A tiny deterministic LCG (numerical recipes constants); kept local so
/// inputs are bit-stable across platforms and crate versions.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Lcg {
        Lcg { state: seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493) }
    }

    /// Next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.state >> 32) as u32
    }

    /// Uniform value in `[-amplitude, amplitude]`.
    pub fn next_i16(&mut self, amplitude: i16) -> i16 {
        let span = (i32::from(amplitude) * 2 + 1) as u32;
        ((self.next_u32() % span) as i32 - i32::from(amplitude)) as i16
    }
}

/// A speech-like test signal: two modulated tones, low-level noise, and
/// periodic near-silent gaps (speech pauses stress the codecs' adaptation
/// logic, which is where the hard-to-predict branches live).
#[must_use]
pub fn speech_like(n: usize, seed: u64) -> Vec<i16> {
    let mut rng = Lcg::new(seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f64;
        // Amplitude envelope with "syllables" and pauses.
        let phase = (i / 800) % 5;
        let envelope = match phase {
            0 => 0.9,
            1 => 0.5,
            2 => 0.1, // pause
            3 => 0.7,
            _ => 0.3,
        };
        let tone = 5200.0 * (t * 0.071).sin() + 2600.0 * (t * 0.0237).sin();
        let noise = f64::from(rng.next_i16(700));
        let v = envelope * tone + noise * 0.6;
        out.push(v.clamp(-32768.0, 32767.0) as i16);
    }
    out
}

/// A pure sine tone.
#[must_use]
pub fn tone(n: usize, period_samples: f64, amplitude: f64) -> Vec<i16> {
    (0..n)
        .map(|i| {
            let v = amplitude * (i as f64 * std::f64::consts::TAU / period_samples).sin();
            v.clamp(-32768.0, 32767.0) as i16
        })
        .collect()
}

/// Uniform noise.
#[must_use]
pub fn noise(n: usize, amplitude: i16, seed: u64) -> Vec<i16> {
    let mut rng = Lcg::new(seed);
    (0..n).map(|_| rng.next_i16(amplitude)).collect()
}

/// Silence.
#[must_use]
pub fn silence(n: usize) -> Vec<i16> {
    vec![0; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(speech_like(500, 7), speech_like(500, 7));
        assert_eq!(noise(100, 1000, 3), noise(100, 1000, 3));
    }

    #[test]
    fn seeds_differ() {
        assert_ne!(noise(100, 1000, 1), noise(100, 1000, 2));
    }

    #[test]
    fn amplitude_respected() {
        for v in noise(10_000, 500, 9) {
            assert!(v.abs() <= 500);
        }
    }

    #[test]
    fn speech_has_pauses_and_activity() {
        let s = speech_like(4000, 11);
        let loud = s.iter().filter(|v| v.abs() > 2000).count();
        let quiet = s.iter().filter(|v| v.abs() < 800).count();
        assert!(loud > 200, "signal has loud stretches ({loud})");
        assert!(quiet > 200, "signal has pauses ({quiet})");
    }

    #[test]
    fn tone_is_periodic() {
        let t = tone(200, 50.0, 1000.0);
        assert_eq!(t[0], t[50]);
        assert!(t.iter().any(|&v| v > 900));
        assert!(t.iter().any(|&v| v < -900));
    }
}
