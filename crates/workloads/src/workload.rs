//! The four benchmark workloads.

use asbr_asm::{assemble, Program};
use asbr_codecs::{adpcm_decode, adpcm_encode, g721_decode, g721_encode, AdpcmState, G72xState};
use asbr_sim::{Interp, RunSummary, SimError};

use crate::input::speech_like;

const ADPCM_ENCODE_SRC: &str = include_str!("../asm/adpcm_encode.s");
const ADPCM_DECODE_SRC: &str = include_str!("../asm/adpcm_decode.s");
const G721_MAIN_ENCODE_SRC: &str = include_str!("../asm/g721_main_encode.s");
const G721_MAIN_DECODE_SRC: &str = include_str!("../asm/g721_main_decode.s");
const G721_COMMON_SRC: &str = include_str!("../asm/g721_common.s");

/// Deterministic seed used for every workload's canonical input.
const INPUT_SEED: u64 = 0x5EED_2001;

/// One of the paper's four benchmark programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// IMA ADPCM encoder (PCM samples in, packed code bytes out).
    AdpcmEncode,
    /// IMA ADPCM decoder (packed code bytes in, PCM samples out).
    AdpcmDecode,
    /// G.721 encoder (PCM samples in, 4-bit codes out).
    G721Encode,
    /// G.721 decoder (4-bit codes in, PCM samples out).
    G721Decode,
}

impl Workload {
    /// All four benchmarks in the paper's reporting order.
    pub const ALL: [Workload; 4] =
        [Workload::AdpcmEncode, Workload::AdpcmDecode, Workload::G721Encode, Workload::G721Decode];

    /// Display name matching the paper's table headers.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Workload::AdpcmEncode => "ADPCM Encode",
            Workload::AdpcmDecode => "ADPCM Decode",
            Workload::G721Encode => "G.721 Encode",
            Workload::G721Decode => "G.721 Decode",
        }
    }

    /// Short machine-friendly identifier (bench IDs, file names, CLI
    /// arguments) — the one place workload slugs are defined.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            Workload::AdpcmEncode => "adpcm_enc",
            Workload::AdpcmDecode => "adpcm_dec",
            Workload::G721Encode => "g721_enc",
            Workload::G721Decode => "g721_dec",
        }
    }

    /// The guest's assembly source.
    #[must_use]
    pub fn source(self) -> String {
        match self {
            Workload::AdpcmEncode => ADPCM_ENCODE_SRC.to_owned(),
            Workload::AdpcmDecode => ADPCM_DECODE_SRC.to_owned(),
            Workload::G721Encode => format!("{G721_MAIN_ENCODE_SRC}\n{G721_COMMON_SRC}"),
            Workload::G721Decode => format!("{G721_MAIN_DECODE_SRC}\n{G721_COMMON_SRC}"),
        }
    }

    /// The assembled guest program.
    ///
    /// # Panics
    ///
    /// Panics if the bundled source fails to assemble (a build defect
    /// covered by this crate's tests).
    #[must_use]
    pub fn program(self) -> Program {
        assemble(&self.source()).expect("bundled workload source assembles")
    }

    /// Step budget for [`Workload::run`]: generous enough for the full
    /// 24k-sample experiment inputs, small enough to catch a guest that
    /// fails to halt.
    pub const MAX_GUEST_STEPS: u64 = 500_000_000;

    /// Runs the guest on `input` to completion on the functional
    /// interpreter, returning the run summary (instruction count and
    /// output samples).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the guest faults (invalid instruction,
    /// memory fault) or fails to halt within [`Workload::MAX_GUEST_STEPS`]
    /// instructions.
    pub fn run(self, input: &[i32]) -> Result<RunSummary, SimError> {
        let mut interp = Interp::new(&self.program())?;
        interp.feed_input(input.iter().copied());
        interp.run(Self::MAX_GUEST_STEPS)
    }

    /// The canonical deterministic input stream, sized by `n_samples`
    /// source PCM samples.
    ///
    /// Encoders receive the PCM samples themselves; decoders receive the
    /// coded stream produced by the corresponding reference encoder on
    /// the same PCM (as the paper's decode benchmarks consume the encoder
    /// outputs).
    #[must_use]
    pub fn input(self, n_samples: usize) -> Vec<i32> {
        let pcm = speech_like(n_samples, INPUT_SEED);
        match self {
            Workload::AdpcmEncode | Workload::G721Encode => {
                pcm.iter().map(|&s| i32::from(s)).collect()
            }
            Workload::AdpcmDecode => {
                adpcm_encode(&pcm, &mut AdpcmState::new())
                    .iter()
                    .map(|&b| i32::from(b))
                    .collect()
            }
            Workload::G721Decode => {
                let mut st = G72xState::new();
                pcm.iter().map(|&s| i32::from(g721_encode(s, &mut st))).collect()
            }
        }
    }

    /// What a correct guest must emit for `input` — computed with the
    /// golden-reference codecs.
    #[must_use]
    pub fn reference_output(self, input: &[i32]) -> Vec<i32> {
        match self {
            Workload::AdpcmEncode => {
                let pcm: Vec<i16> = input.iter().map(|&v| v as i16).collect();
                adpcm_encode(&pcm, &mut AdpcmState::new())
                    .iter()
                    .map(|&b| i32::from(b))
                    .collect()
            }
            Workload::AdpcmDecode => {
                let bytes: Vec<u8> = input.iter().map(|&v| v as u8).collect();
                adpcm_decode(&bytes, bytes.len() * 2, &mut AdpcmState::new())
                    .iter()
                    .map(|&s| i32::from(s))
                    .collect()
            }
            Workload::G721Encode => {
                let mut st = G72xState::new();
                input
                    .iter()
                    .map(|&v| i32::from(g721_encode(v as i16, &mut st)))
                    .collect()
            }
            Workload::G721Decode => {
                let mut st = G72xState::new();
                input
                    .iter()
                    .map(|&v| i32::from(g721_decode(v as u8, &mut st)))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_assemble() {
        for w in Workload::ALL {
            let p = w.program();
            assert!(p.text().len() > 30, "{} is non-trivial", w.name());
            assert_eq!(p.entry(), p.symbol("main").unwrap());
        }
    }

    fn run_guest(w: Workload, input: &[i32]) -> Vec<i32> {
        w.run(input)
            .unwrap_or_else(|e| panic!("{} guest failed: {e}", w.name()))
            .output
    }

    #[test]
    fn run_reports_guest_failure_as_err() {
        // A perfectly healthy guest starved of its step budget must come
        // back as a SimError, not a panic.
        let w = Workload::AdpcmEncode;
        let input = w.input(50);
        let mut it = asbr_sim::Interp::new(&w.program()).unwrap();
        it.feed_input(input.iter().copied());
        assert!(matches!(it.run(10), Err(asbr_sim::SimError::Limit { limit: 10 })));
        // And the Workload::run wrapper succeeds on the same input.
        assert_eq!(w.run(&input).unwrap().output, w.reference_output(&input));
    }

    #[test]
    fn adpcm_encode_guest_matches_reference() {
        let w = Workload::AdpcmEncode;
        let input = w.input(600);
        assert_eq!(run_guest(w, &input), w.reference_output(&input));
    }

    #[test]
    fn adpcm_decode_guest_matches_reference() {
        let w = Workload::AdpcmDecode;
        let input = w.input(600);
        assert_eq!(run_guest(w, &input), w.reference_output(&input));
    }

    #[test]
    fn g721_encode_guest_matches_reference() {
        let w = Workload::G721Encode;
        let input = w.input(300);
        assert_eq!(run_guest(w, &input), w.reference_output(&input));
    }

    #[test]
    fn g721_decode_guest_matches_reference() {
        let w = Workload::G721Decode;
        let input = w.input(300);
        assert_eq!(run_guest(w, &input), w.reference_output(&input));
    }

    #[test]
    fn guests_handle_empty_input() {
        for w in Workload::ALL {
            let out = run_guest(w, &[]);
            assert!(out.is_empty(), "{} must emit nothing on empty input", w.name());
        }
    }

    #[test]
    fn guests_handle_extreme_samples() {
        let extremes = vec![32767, -32768, 32767, -32768, 0, 1, -1, 32767];
        for w in [Workload::AdpcmEncode, Workload::G721Encode] {
            assert_eq!(run_guest(w, &extremes), w.reference_output(&extremes), "{}", w.name());
        }
    }

    #[test]
    fn decoder_inputs_come_from_encoders() {
        // The decode workloads must consume exactly what the encoders
        // produce for the same PCM.
        let enc_in = Workload::AdpcmEncode.input(100);
        let enc_out = Workload::AdpcmEncode.reference_output(&enc_in);
        assert_eq!(Workload::AdpcmDecode.input(100), enc_out);

        let enc_in = Workload::G721Encode.input(100);
        let enc_out = Workload::G721Encode.reference_output(&enc_in);
        assert_eq!(Workload::G721Decode.input(100), enc_out);
    }
}
