# G.721 decoder guest main loop (port of MediaBench g721_decoder, linear
# output coding). Pops 4-bit codes from MMIO, pushes one 16-bit PCM
# sample per code. Subroutines and state live in g721_common.s (appended).
#
# Persistent registers across calls:
#   r28 = MMIO base   r17 = sez   r18 = se   r19 = y
#   r20 = i           r21 = dq    r22 = sr
        .text
main:
        li   r28, 0xFFFF0000
        lw   r23, 4(r28)             # prime the remaining-count read

# The remaining-count is read one code ahead (manual scheduling, paper
# Sec. 8), making the exit branch foldable.
dec_loop:
        beqz r23, dec_done           # [br_exit]
        lw   r9, 0(r28)
        lw   r23, 4(r28)             # read-ahead remaining
        andi r20, r9, 0x0F           # i = code & 0xF

        jal  pz
        sll  r2, r2, 16
        sra  r17, r2, 16             # sezi
        jal  ppole
        add  r9, r17, r2
        sll  r9, r9, 16
        sra  r18, r9, 16             # sei
        sra  r18, r18, 1             # se
        sra  r17, r17, 1             # sez

        jal  stepsz
        sll  r2, r2, 16
        sra  r19, r2, 16             # y

        andi r4, r20, 8              # sign
        sll  r9, r20, 2
        la   r10, dqlntab
        add  r9, r9, r10
        lw   r5, 0(r9)
        move r6, r19
        jal  recon
        sll  r2, r2, 16
        sra  r21, r2, 16             # dq

        bltz r21, dec_srn            # [br_dq_sign]
        add  r9, r18, r21
        j    dec_sr
dec_srn:
        li   r10, 0x3FFF
        and  r9, r21, r10
        sub  r9, r18, r9
dec_sr:
        sll  r9, r9, 16
        sra  r22, r9, 16             # sr

        sub  r9, r22, r18
        add  r9, r9, r17
        sll  r9, r9, 16
        sra  r9, r9, 16              # dqsez = s16(sr - se + sez)

        move r4, r19
        sll  r10, r20, 2
        la   r11, witab
        add  r11, r11, r10
        lw   r5, 0(r11)
        sll  r5, r5, 5
        la   r11, fitab
        add  r11, r11, r10
        lw   r6, 0(r11)
        move r7, r21
        move r8, r22
        jal  update

        sll  r9, r22, 2              # output = s16(sr << 2)
        sll  r9, r9, 16
        sra  r9, r9, 16
        sw   r9, 8(r28)
        j    dec_loop

dec_done:
        halt
