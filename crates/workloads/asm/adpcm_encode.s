# IMA ADPCM encoder guest (port of MediaBench adpcm_coder).
#
# I/O: pops 16-bit PCM samples (sign-extended words) from the MMIO input
# stream, pushes one packed byte (two 4-bit codes, first sample in the
# high nibble) per sample pair; a trailing odd sample flushes with a zero
# low nibble.
#
# Register map:
#   r28 = MMIO base            r16 = valpred   r17 = index
#   r18 = step                 r19 = bufferstep
#   r21 = outputbuffer         r20 = &stepsizeTable  r22 = &indexTable
#   r9..r15 scratch
        .text
main:
        li   r28, 0xFFFF0000
        li   r16, 0                  # valpred = 0
        li   r17, 0                  # index = 0
        la   r20, stepsize
        lw   r18, 0(r20)             # step = stepsizeTable[0]
        li   r19, 1                  # bufferstep = 1
        li   r21, 0                  # outputbuffer = 0
        la   r22, indextab
        lw   r23, 4(r28)             # prime the remaining-count read

# Manual scheduling (paper Sec. 8): the remaining-count is read one
# iteration ahead, so the exit branch's predicate is defined a whole loop
# body before the branch — software pipelining in the Sec. 5.1 sense.
enc_loop:
        beqz r23, enc_done           # [br_exit] biased not-taken, foldable
        lw   r9, 0(r28)              # val = next sample
        lw   r23, 4(r28)             # read-ahead remaining for next check

        # Step 1: diff = val - valpred; split sign/magnitude.
        sub  r10, r9, r16
        li   r11, 0                  # sign = 0
        bgez r10, enc_pos            # [br_sign] input-data dependent
        li   r11, 8
        sub  r10, r0, r10            # diff = -diff
enc_pos:

        # Step 2: quantize by trial subtraction (3 data-dependent branches).
        li   r12, 0                  # delta = 0
        sra  r13, r18, 3             # vpdiff = step >> 3
        sub  r14, r10, r18
        bltz r14, enc_b4             # [br_b4] diff < step ?
        li   r12, 4
        move r10, r14                # diff -= step
        add  r13, r13, r18           # vpdiff += step
enc_b4:
        sra  r15, r18, 1             # step >>= 1
        sub  r14, r10, r15
        bltz r14, enc_b2             # [br_b2]
        ori  r12, r12, 2
        move r10, r14
        add  r13, r13, r15
enc_b2:
        sra  r15, r15, 1             # step >>= 1
        sub  r14, r10, r15
        bltz r14, enc_b1             # [br_b1]
        ori  r12, r12, 1
        add  r13, r13, r15
enc_b1:

        # Step 3: valpred +/- vpdiff — direction correlates with br_sign.
        beqz r11, enc_add            # [br_sign2]
        sub  r16, r16, r13
        j    enc_clamp
enc_add:
        add  r16, r16, r13
enc_clamp:

        # Step 4: clamp valpred to 16 bits (biased branches).
        li   r14, 32767
        slt  r15, r14, r16
        beqz r15, enc_cl2            # [br_clamp_hi] rarely flips
        move r16, r14
enc_cl2:
        li   r14, -32768
        slt  r15, r16, r14
        beqz r15, enc_cl3            # [br_clamp_lo]
        move r16, r14
enc_cl3:

        # Step 5: delta |= sign; adapt index and step.
        or   r12, r12, r11
        sll  r14, r12, 2
        add  r14, r14, r22
        lw   r14, 0(r14)             # indexTable[delta]
        add  r17, r17, r14
        bgez r17, enc_ix1            # [br_ixlo]
        li   r17, 0
enc_ix1:
        li   r14, 88
        sub  r15, r14, r17
        bgez r15, enc_ix2            # [br_ixhi]
        move r17, r14
enc_ix2:
        sll  r14, r17, 2
        add  r14, r14, r20
        lw   r18, 0(r14)             # step = stepsizeTable[index]

        # Step 6: nibble packing (perfectly alternating branch).
        beqz r19, enc_low            # [br_toggle]
        sll  r21, r12, 4
        andi r21, r21, 0xf0
        li   r19, 0
        j    enc_loop
enc_low:
        andi r14, r12, 0x0f
        or   r14, r14, r21
        sw   r14, 8(r28)             # emit packed byte
        li   r19, 1
        j    enc_loop

enc_done:
        bnez r19, enc_end            # pending high nibble?
        sw   r21, 8(r28)             # flush it
enc_end:
        halt

        .data
indextab:
        .word -1, -1, -1, -1, 2, 4, 6, 8
        .word -1, -1, -1, -1, 2, 4, 6, 8
stepsize:
        .word 7, 8, 9, 10, 11, 12, 13, 14, 16, 17
        .word 19, 21, 23, 25, 28, 31, 34, 37, 41, 45
        .word 50, 55, 60, 66, 73, 80, 88, 97, 107, 118
        .word 130, 143, 157, 173, 190, 209, 230, 253, 279, 307
        .word 337, 371, 408, 449, 494, 544, 598, 658, 724, 796
        .word 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066
        .word 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358
        .word 5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899
        .word 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767
