# G.721 shared subroutines and state (port of MediaBench g72x.c).
#
# Calling convention:
#   args r4-r7 (+ r8, r9 for update's 5th/6th), result r2, ra r31,
#   sp r29 full-descending. r16-r23 and r30 are callee-saved.
#   Documented extra clobbers: quan clobbers only r2, r9, r10 (callers
#   rely on r4-r6 and r11-r15 surviving a quan call).
#
# State fields are stored as full words holding already-truncated 16-bit
# values (except st_yl, a C `long`); every store site applies the same
# `short` truncation (sll 16 / sra 16) the C source implies.

# ---------------------------------------------------------------------
# quan(val r4, table r5, size r6) -> r2
# Index of the first table entry strictly greater than val.
# ---------------------------------------------------------------------
quan:
        li   r2, 0
quan_loop:
        beq  r2, r6, quan_ret
        sll  r9, r2, 2
        add  r9, r9, r5
        lw   r9, 0(r9)
        slt  r10, r4, r9
        bnez r10, quan_ret           # [br_quan] data dependent exit
        addi r2, r2, 1
        j    quan_loop
quan_ret:
        jr   r31

# ---------------------------------------------------------------------
# fmult(an r4, srn r5) -> r2
# Multiply predictor coefficient by floating-point-format signal value.
# ---------------------------------------------------------------------
# Manual scheduling (paper Secs. 5.1/8): the sign product is computed at
# entry (its branch is the last thing fmult does), and independent srn
# field extractions are interleaved between each exponent definition and
# the branch testing it, lifting their def->branch distances to 3.
fmult:
        addi r29, r29, -28
        sw   r31, 0(r29)
        sw   r16, 4(r29)
        sw   r17, 8(r29)
        sw   r18, 12(r29)
        sw   r19, 16(r29)
        sw   r20, 20(r29)
        sw   r21, 24(r29)
        move r16, r4                 # an
        move r17, r5                 # srn
        xor  r21, r4, r5             # sign product, scheduled early
        bgtz r4, fm_pos              # [br_fm_sign] data dependent
        sub  r9, r0, r4
        andi r18, r9, 0x1FFF         # anmag = (-an) & 0x1FFF
        j    fm_quan
fm_pos:
        move r18, r4                 # anmag = an
fm_quan:
        move r4, r18
        la   r5, power2
        li   r6, 15
        jal  quan
        addi r19, r2, -6             # anexp
        sra  r9, r17, 6              # independent: srn exponent field
        andi r9, r9, 0xF
        andi r10, r17, 0x3F          # independent: srn mantissa field
        bnez r18, fm_mant            # [br_fm_zero] anmag != 0 (common)
        li   r20, 32                 # anmant for zero magnitude
        j    fm_wexp
fm_mant:
        bltz r19, fm_shl             # [br_fm_exp] distance 3 after scheduling
        srav r20, r18, r19
        j    fm_wexp
fm_shl:
        sub  r11, r0, r19
        sllv r20, r18, r11
fm_wexp:
        add  r9, r19, r9
        addi r19, r9, -13            # wanexp
        mul  r10, r20, r10
        addi r10, r10, 0x30
        sra  r20, r10, 4             # wanmant
        bltz r19, fm_shr             # [br_fm_wexp] distance 3 after scheduling
        sllv r9, r20, r19
        andi r2, r9, 0x7FFF
        j    fm_sign
fm_shr:
        sub  r9, r0, r19
        srav r2, r20, r9
fm_sign:
        bgez r21, fm_ret             # [br_fm_neg] predicate from entry: foldable
        sub  r2, r0, r2
fm_ret:
        lw   r31, 0(r29)
        lw   r16, 4(r29)
        lw   r17, 8(r29)
        lw   r18, 12(r29)
        lw   r19, 16(r29)
        lw   r20, 20(r29)
        lw   r21, 24(r29)
        addi r29, r29, 28
        jr   r31

# ---------------------------------------------------------------------
# pz() -> r2 : predictor_zero — sixth-order zero-predictor estimate.
# Returns the *untruncated* int sum; callers apply the short cast.
# ---------------------------------------------------------------------
pz:
        addi r29, r29, -12
        sw   r31, 0(r29)
        sw   r16, 4(r29)
        sw   r17, 8(r29)
        li   r16, 0                  # cnt
        li   r17, 0                  # sezi
pz_loop:
        sll  r9, r16, 2
        la   r10, st_b
        add  r10, r10, r9
        lw   r4, 0(r10)
        sra  r4, r4, 2
        la   r10, st_dq
        add  r10, r10, r9
        lw   r5, 0(r10)
        jal  fmult
        add  r17, r17, r2
        addi r16, r16, 1
        addi r9, r16, -6
        bltz r9, pz_loop             # [br_pz_loop] taken 5/6
        move r2, r17
        lw   r31, 0(r29)
        lw   r16, 4(r29)
        lw   r17, 8(r29)
        addi r29, r29, 12
        jr   r31

# ---------------------------------------------------------------------
# ppole() -> r2 : predictor_pole — second-order pole-predictor estimate.
# ---------------------------------------------------------------------
ppole:
        addi r29, r29, -8
        sw   r31, 0(r29)
        sw   r16, 4(r29)
        la   r9, st_a
        lw   r4, 4(r9)
        sra  r4, r4, 2
        la   r9, st_sr
        lw   r5, 4(r9)
        jal  fmult
        move r16, r2
        la   r9, st_a
        lw   r4, 0(r9)
        sra  r4, r4, 2
        la   r9, st_sr
        lw   r5, 0(r9)
        jal  fmult
        add  r2, r2, r16
        lw   r31, 0(r29)
        lw   r16, 4(r29)
        addi r29, r29, 8
        jr   r31

# ---------------------------------------------------------------------
# stepsz() -> r2 : step_size — quantizer scale factor.
# Leaf; clobbers r2, r9, r10.
# ---------------------------------------------------------------------
# Manually scheduled: the independent yu/yl loads fill the slots between
# the speed-control test's definition and its branch.
stepsz:
        la   r9, st_ap
        lw   r9, 0(r9)
        slti r10, r9, 256
        la   r11, st_yu
        lw   r11, 0(r11)             # yu (independent)
        la   r12, st_yl
        lw   r12, 0(r12)             # yl (independent)
        bnez r10, ss_blend           # [br_ss_ap] distance 4 after scheduling
        move r2, r11
        jr   r31
ss_blend:
        sra  r2, r12, 6              # y = yl >> 6
        sub  r10, r11, r2            # dif = yu - y
        sra  r9, r9, 2               # al = ap >> 2
        beqz r10, ss_ret             # [br_ss_dif0]
        bltz r10, ss_neg             # [br_ss_difneg]
        mul  r10, r10, r9
        sra  r10, r10, 6
        add  r2, r2, r10
        jr   r31
ss_neg:
        mul  r10, r10, r9
        addi r10, r10, 0x3F
        sra  r10, r10, 6
        add  r2, r2, r10
ss_ret:
        jr   r31

# ---------------------------------------------------------------------
# quantz(d r4, y r5) -> r2 : quantize against qtab (size 7).
# ---------------------------------------------------------------------
quantz:
        addi r29, r29, -16
        sw   r31, 0(r29)
        sw   r16, 4(r29)
        sw   r17, 8(r29)
        sw   r18, 12(r29)
        move r16, r4                 # d
        move r17, r5                 # y
        bgez r4, qz_abs              # [br_qz_abs] data dependent
        sub  r4, r0, r4
qz_abs:
        sll  r4, r4, 16
        sra  r4, r4, 16              # dqm = s16(abs(d))
        move r18, r4
        sra  r4, r4, 1
        la   r5, power2
        li   r6, 15
        jal  quan                    # exp
        sll  r9, r18, 7
        srav r9, r9, r2
        andi r9, r9, 0x7F            # mant
        sll  r10, r2, 7
        add  r9, r10, r9             # dl = (exp<<7) + mant
        sra  r10, r17, 2
        sub  r4, r9, r10             # dln = dl - (y>>2)
        sll  r4, r4, 16
        sra  r4, r4, 16
        la   r5, qtab
        li   r6, 7
        jal  quan                    # i
        bltz r16, qz_neg             # [br_qz_sign] data dependent
        bnez r2, qz_ret              # [br_qz_zero]
        li   r2, 15                  # i == 0 -> (size<<1)+1
        j    qz_ret
qz_neg:
        li   r9, 15
        sub  r2, r9, r2              # (size<<1)+1 - i
qz_ret:
        lw   r31, 0(r29)
        lw   r16, 4(r29)
        lw   r17, 8(r29)
        lw   r18, 12(r29)
        addi r29, r29, 16
        jr   r31

# ---------------------------------------------------------------------
# recon(sign r4, dqln r5, y r6) -> r2 : reconstruct.
# Leaf; clobbers r2, r9, r10, r11.
# ---------------------------------------------------------------------
recon:
        sra  r9, r6, 2
        add  r9, r5, r9              # dql = dqln + (y>>2)
        bgez r9, rc_pos              # [br_rc_neg]
        beqz r4, rc_zero             # [br_rc_sign0]
        li   r2, -32768
        jr   r31
rc_zero:
        li   r2, 0
        jr   r31
rc_pos:
        sra  r10, r9, 7
        andi r10, r10, 15            # dex
        andi r9, r9, 127
        addi r9, r9, 128             # dqt
        sll  r9, r9, 7
        li   r11, 14
        sub  r11, r11, r10
        srav r2, r9, r11             # dq
        beqz r4, rc_ret              # [br_rc_sign]
        addi r2, r2, -32768          # dq - 0x8000
rc_ret:
        jr   r31

# ---------------------------------------------------------------------
# update(y r4, wi r5, fi r6, dq r7, sr r8, dqsez r9)
# Adapts every element of the codec state (code_size fixed at 4).
# ---------------------------------------------------------------------
update:
        addi r29, r29, -40
        sw   r31, 0(r29)
        sw   r16, 4(r29)
        sw   r17, 8(r29)
        sw   r18, 12(r29)
        sw   r19, 16(r29)
        sw   r20, 20(r29)
        sw   r21, 24(r29)
        sw   r22, 28(r29)
        sw   r23, 32(r29)
        sw   r30, 36(r29)
        move r30, r4                 # y
        move r23, r6                 # fi
        move r16, r7                 # dq
        move r17, r8                 # sr
        move r18, r9                 # dqsez
        slt  r19, r18, r0            # pk0 = dqsez < 0
        andi r20, r16, 0x7FFF        # mag = dq & 0x7FFF
        la   r14, st_td              # td loaded early (manual scheduling);
        lw   r14, 0(r14)             # its branch is ~10 slots below

        # --- transition detect (uses the OLD yl) ---
        la   r9, st_yl
        lw   r10, 0(r9)
        sra  r11, r10, 15            # ylint
        sra  r12, r10, 10
        andi r12, r12, 0x1F
        addi r12, r12, 32
        sllv r12, r12, r11           # thr1 = (32+ylfrac) << ylint
        sll  r12, r12, 16
        sra  r12, r12, 16
        li   r13, 9
        slt  r13, r13, r11
        beqz r13, upd_thr            # [br_ylint]
        li   r12, 31744              # thr2 = 31 << 10
upd_thr:
        sra  r13, r12, 1
        add  r12, r12, r13
        sra  r12, r12, 1             # dqthr
        li   r21, 0                  # tr = 0
        beqz r14, upd_yu             # [br_td0] td == 0 (dominant); foldable
        slt  r21, r12, r20           # tr = mag > dqthr
upd_yu:

        # --- yu = clamp(s16(y + ((wi-y)>>5)), 544, 5120) ---
        sub  r9, r5, r30
        sra  r9, r9, 5
        add  r9, r30, r9
        sll  r9, r9, 16
        sra  r9, r9, 16
        li   r10, 544
        slt  r11, r9, r10
        beqz r11, upd_yu_hi          # [br_yu_lo]
        move r9, r10
        j    upd_yu_set
upd_yu_hi:
        li   r10, 5120
        slt  r11, r10, r9
        beqz r11, upd_yu_set         # [br_yu_hi]
        move r9, r10
upd_yu_set:
        la   r10, st_yu
        sw   r9, 0(r10)

        # --- yl += yu + ((-yl)>>6) ---
        la   r10, st_yl
        lw   r11, 0(r10)
        sub  r12, r0, r11
        sra  r12, r12, 6
        add  r11, r11, r9
        add  r11, r11, r12
        sw   r11, 0(r10)

        # --- predictor adaptation (or transition reset) ---
        li   r22, 0                  # a2p = 0
        beqz r21, upd_adapt          # [br_tr] tr == 0 (dominant)
        la   r9, st_a
        sw   r0, 0(r9)
        sw   r0, 4(r9)
        la   r9, st_b
        sw   r0, 0(r9)
        sw   r0, 4(r9)
        sw   r0, 8(r9)
        sw   r0, 12(r9)
        sw   r0, 16(r9)
        sw   r0, 20(r9)
        j    upd_dqsh
upd_adapt:
        la   r9, st_pk
        lw   r10, 0(r9)
        xor  r15, r19, r10           # pks1 = pk0 ^ pk[0] (held in r15)
        la   r9, st_a
        lw   r10, 4(r9)
        sra  r11, r10, 7
        sub  r22, r10, r11           # a2p = a[1] - (a[1]>>7)
        sll  r22, r22, 16
        sra  r22, r22, 16
        beqz r18, upd_a1             # [br_dqsez0] dqsez == 0
        lw   r10, 0(r9)              # a[0]
        beqz r15, upd_fa_neg         # [br_pks1]
        move r11, r10
        j    upd_fa
upd_fa_neg:
        sub  r11, r0, r10
upd_fa:
        sll  r11, r11, 16
        sra  r11, r11, 16            # fa1
        li   r12, -8191
        slt  r13, r11, r12
        beqz r13, upd_fa_hi          # [br_fa_lo]
        addi r22, r22, -256
        j    upd_fa_s16
upd_fa_hi:
        li   r12, 8191
        slt  r13, r12, r11
        beqz r13, upd_fa_mid         # [br_fa_hi]
        addi r22, r22, 255
        j    upd_fa_s16
upd_fa_mid:
        sra  r11, r11, 5
        add  r22, r22, r11
upd_fa_s16:
        sll  r22, r22, 16
        sra  r22, r22, 16
        la   r9, st_pk
        lw   r10, 4(r9)              # pk[1]
        xor  r10, r19, r10
        beqz r10, upd_pk2b           # [br_pks2]
        li   r12, -12159
        slt  r13, r22, r12
        bnez r13, upd_set_nmax       # a2p <= -12160
        li   r12, 12415
        slt  r13, r12, r22
        bnez r13, upd_set_pmax       # a2p >= 12416
        addi r22, r22, -128
        j    upd_a1
upd_pk2b:
        li   r12, -12415
        slt  r13, r22, r12
        bnez r13, upd_set_nmax       # a2p <= -12416
        li   r12, 12159
        slt  r13, r12, r22
        bnez r13, upd_set_pmax       # a2p >= 12160
        addi r22, r22, 128
        j    upd_a1
upd_set_nmax:
        li   r22, -12288
        j    upd_a1
upd_set_pmax:
        li   r22, 12288
upd_a1:
        la   r9, st_a
        sw   r22, 4(r9)              # a[1] = a2p
        lw   r10, 0(r9)
        sra  r11, r10, 8
        sub  r10, r10, r11           # a[0] -= a[0]>>8
        beqz r18, upd_a0_s16         # [br_dqsez0b]
        beqz r15, upd_a0_plus        # [br_pks1b]
        addi r10, r10, -192
        j    upd_a0_s16
upd_a0_plus:
        addi r10, r10, 192
upd_a0_s16:
        sll  r10, r10, 16
        sra  r10, r10, 16
        li   r11, 15360
        sub  r11, r11, r22           # a1ul = 15360 - a2p
        sub  r12, r0, r11
        slt  r13, r10, r12
        beqz r13, upd_a0_hi          # [br_a0_lo]
        move r10, r12
        j    upd_a0_set
upd_a0_hi:
        slt  r13, r11, r10
        beqz r13, upd_a0_set         # [br_a0_hi]
        move r10, r11
upd_a0_set:
        sw   r10, 0(r9)              # a[0]

        # --- b[] adaptation (pks1/r15 is dead from here) ---
        la   r9, st_b
        la   r10, st_dq
        li   r11, 0
upd_b_loop:
        sll  r12, r11, 2
        add  r13, r9, r12
        lw   r14, 0(r13)
        sra  r15, r14, 8
        sub  r14, r14, r15           # b[cnt] -= b[cnt]>>8
        andi r15, r16, 0x7FFF
        beqz r15, upd_b_store        # [br_b_mag0]
        add  r15, r10, r12
        lw   r15, 0(r15)             # dq[cnt]
        xor  r15, r15, r16
        bltz r15, upd_b_minus        # [br_b_sign]
        addi r14, r14, 128
        j    upd_b_store
upd_b_minus:
        addi r14, r14, -128
upd_b_store:
        sll  r14, r14, 16
        sra  r14, r14, 16
        sw   r14, 0(r13)
        addi r11, r11, 1
        addi r15, r11, -6
        bltz r15, upd_b_loop         # [br_b_loop]

upd_dqsh:
        # --- dq[5..1] = dq[4..0]; dq[0] = float(dq) ---
        la   r9, st_dq
        lw   r10, 16(r9)
        sw   r10, 20(r9)
        lw   r10, 12(r9)
        sw   r10, 16(r9)
        lw   r10, 8(r9)
        sw   r10, 12(r9)
        lw   r10, 4(r9)
        sw   r10, 8(r9)
        lw   r10, 0(r9)
        sw   r10, 4(r9)
        bnez r20, upd_dq_nz          # [br_dq_mag0] mag != 0 (common)
        li   r11, 0x20
        bgez r16, upd_dq_store       # [br_dq_sign0]
        li   r11, -992
        j    upd_dq_store
upd_dq_nz:
        move r4, r20
        la   r5, power2
        li   r6, 15
        jal  quan                    # exp
        sll  r11, r2, 6
        sll  r12, r20, 6
        srav r12, r12, r2
        add  r11, r11, r12
        bgez r16, upd_dq_s16         # [br_dq_sign]
        addi r11, r11, -1024
upd_dq_s16:
        sll  r11, r11, 16
        sra  r11, r11, 16
upd_dq_store:
        la   r9, st_dq
        sw   r11, 0(r9)

        # --- sr[1] = sr[0]; sr[0] = float(sr) ---
        la   r9, st_sr
        lw   r10, 0(r9)
        sw   r10, 4(r9)
        bnez r17, upd_sr_nz          # [br_sr0]
        li   r11, 0x20
        j    upd_sr_store
upd_sr_nz:
        bltz r17, upd_sr_neg         # [br_sr_sign]
        move r4, r17
        la   r5, power2
        li   r6, 15
        jal  quan
        sll  r11, r2, 6
        sll  r12, r17, 6
        srav r12, r12, r2
        add  r11, r11, r12
        sll  r11, r11, 16
        sra  r11, r11, 16
        j    upd_sr_store
upd_sr_neg:
        li   r10, -32768
        beq  r17, r10, upd_sr_min    # sr == -32768
        sub  r4, r0, r17             # mag = -sr
        move r20, r4
        la   r5, power2
        li   r6, 15
        jal  quan
        sll  r11, r2, 6
        sll  r12, r20, 6
        srav r12, r12, r2
        add  r11, r11, r12
        addi r11, r11, -1024
        sll  r11, r11, 16
        sra  r11, r11, 16
        j    upd_sr_store
upd_sr_min:
        li   r11, -992
upd_sr_store:
        la   r9, st_sr
        sw   r11, 0(r9)

        # --- pk shift ---
        la   r9, st_pk
        lw   r10, 0(r9)
        sw   r10, 4(r9)
        sw   r19, 0(r9)

        # --- tone detect ---
        li   r11, 0
        bnez r21, upd_td_set         # [br_td_tr] tr == 1 -> td = 0
        li   r12, -11776
        slt  r11, r22, r12           # td = a2p < -11776
upd_td_set:
        la   r9, st_td
        sw   r11, 0(r9)

        # --- adaptation speed control averages ---
        la   r9, st_dms
        lw   r10, 0(r9)
        sub  r11, r23, r10
        sra  r11, r11, 5
        add  r10, r10, r11
        sll  r10, r10, 16
        sra  r10, r10, 16
        sw   r10, 0(r9)
        la   r9, st_dml
        lw   r10, 0(r9)
        sll  r11, r23, 2
        sub  r11, r11, r10
        sra  r11, r11, 7
        add  r10, r10, r11
        sll  r10, r10, 16
        sra  r10, r10, 16
        sw   r10, 0(r9)

        # --- ap update ---
        la   r9, st_ap
        lw   r10, 0(r9)
        bnez r21, upd_ap_tr          # [br_ap_tr]
        slti r11, r30, 1536
        bnez r11, upd_ap_up          # [br_ap_y]
        la   r12, st_td
        lw   r12, 0(r12)
        bnez r12, upd_ap_up          # [br_ap_td]
        la   r12, st_dms
        lw   r12, 0(r12)
        sll  r12, r12, 2
        la   r13, st_dml
        lw   r13, 0(r13)
        sub  r12, r12, r13           # (dms<<2) - dml
        bgez r12, upd_ap_abs         # [br_ap_sign]
        sub  r12, r0, r12
upd_ap_abs:
        sra  r13, r13, 3
        slt  r14, r12, r13           # abs < dml>>3 ?
        beqz r14, upd_ap_up          # [br_ap_cmp]
        sub  r11, r0, r10            # decay: ap += (-ap)>>4
        sra  r11, r11, 4
        add  r10, r10, r11
        j    upd_ap_s16
upd_ap_up:
        li   r11, 0x200
        sub  r11, r11, r10
        sra  r11, r11, 4
        add  r10, r10, r11
upd_ap_s16:
        sll  r10, r10, 16
        sra  r10, r10, 16
        j    upd_ap_store
upd_ap_tr:
        li   r10, 256
upd_ap_store:
        la   r9, st_ap
        sw   r10, 0(r9)

        lw   r31, 0(r29)
        lw   r16, 4(r29)
        lw   r17, 8(r29)
        lw   r18, 12(r29)
        lw   r19, 16(r29)
        lw   r20, 20(r29)
        lw   r21, 24(r29)
        lw   r22, 28(r29)
        lw   r23, 32(r29)
        lw   r30, 36(r29)
        addi r29, r29, 40
        jr   r31

# ---------------------------------------------------------------------
# Tables and codec state (CCITT reset values).
# ---------------------------------------------------------------------
        .data
power2:
        .word 1, 2, 4, 8, 16, 32, 64, 128
        .word 256, 512, 1024, 2048, 4096, 8192, 16384
qtab:
        .word -124, 80, 178, 246, 300, 349, 400
dqlntab:
        .word -2048, 4, 135, 213, 273, 323, 373, 425
        .word 425, 373, 323, 273, 213, 135, 4, -2048
witab:
        .word -12, 18, 41, 64, 112, 198, 355, 1122
        .word 1122, 355, 198, 112, 64, 41, 18, -12
fitab:
        .word 0, 0, 0, 0x200, 0x200, 0x200, 0x600, 0xE00
        .word 0xE00, 0x600, 0x200, 0x200, 0x200, 0, 0, 0

st_yl:  .word 34816
st_yu:  .word 544
st_dms: .word 0
st_dml: .word 0
st_ap:  .word 0
st_a:   .word 0, 0
st_b:   .word 0, 0, 0, 0, 0, 0
st_pk:  .word 0, 0
st_dq:  .word 32, 32, 32, 32, 32, 32
st_sr:  .word 32, 32
st_td:  .word 0
