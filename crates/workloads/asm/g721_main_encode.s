# G.721 encoder guest main loop (port of MediaBench g721_encoder, linear
# input coding). Pops 16-bit PCM samples from MMIO, pushes one 4-bit code
# per sample. Subroutines and state live in g721_common.s (appended).
#
# Persistent registers across calls (callee-saved by every subroutine):
#   r28 = MMIO base   r16 = sl then d   r17 = sezi then sez
#   r18 = se          r19 = y           r20 = i
#   r21 = dq          r22 = sr
        .text
main:
        li   r28, 0xFFFF0000
        lw   r23, 4(r28)             # prime the remaining-count read

# The remaining-count is read one sample ahead (manual scheduling, paper
# Sec. 8), making the exit branch foldable.
enc_loop:
        beqz r23, enc_done           # [br_exit]
        lw   r9, 0(r28)
        lw   r23, 4(r28)             # read-ahead remaining
        sra  r16, r9, 2              # sl = sample >> 2 (14-bit range)

        jal  pz
        sll  r2, r2, 16
        sra  r17, r2, 16             # sezi = s16(sum)
        jal  ppole
        add  r9, r17, r2
        sll  r9, r9, 16
        sra  r18, r9, 16             # sei
        sra  r18, r18, 1             # se = sei >> 1
        sra  r17, r17, 1             # sez = sezi >> 1

        sub  r9, r16, r18
        sll  r9, r9, 16
        sra  r16, r9, 16             # d = s16(sl - se)

        jal  stepsz
        sll  r2, r2, 16
        sra  r19, r2, 16             # y

        move r4, r16
        move r5, r19
        jal  quantz
        move r20, r2                 # i

        andi r4, r20, 8              # sign
        sll  r9, r20, 2
        la   r10, dqlntab
        add  r9, r9, r10
        lw   r5, 0(r9)               # dqlntab[i]
        move r6, r19
        jal  recon
        sll  r2, r2, 16
        sra  r21, r2, 16             # dq

        bltz r21, enc_srn            # [br_dq_sign]
        add  r9, r18, r21            # sr = se + dq
        j    enc_sr
enc_srn:
        li   r10, 0x3FFF
        and  r9, r21, r10
        sub  r9, r18, r9             # sr = se - (dq & 0x3FFF)
enc_sr:
        sll  r9, r9, 16
        sra  r22, r9, 16             # sr

        add  r9, r22, r17
        sub  r9, r9, r18
        sll  r9, r9, 16
        sra  r9, r9, 16              # dqsez = s16(sr + sez - se)

        move r4, r19                 # y
        sll  r10, r20, 2
        la   r11, witab
        add  r11, r11, r10
        lw   r5, 0(r11)
        sll  r5, r5, 5               # wi = witab[i] << 5
        la   r11, fitab
        add  r11, r11, r10
        lw   r6, 0(r11)              # fi = fitab[i]
        move r7, r21                 # dq
        move r8, r22                 # sr
        jal  update

        sw   r20, 8(r28)             # emit the 4-bit code
        j    enc_loop

enc_done:
        halt
