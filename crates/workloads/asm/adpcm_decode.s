# IMA ADPCM decoder guest (port of MediaBench adpcm_decoder).
#
# I/O: pops packed code bytes (two 4-bit codes each, high nibble first)
# from the MMIO input stream and pushes one 16-bit PCM sample per code.
#
# Register map:
#   r28 = MMIO base            r16 = valpred   r17 = index
#   r18 = step                 r19 = bufferstep (1 = low nibble pending)
#   r21 = inputbuffer          r20 = &stepsizeTable  r22 = &indexTable
        .text
main:
        li   r28, 0xFFFF0000
        li   r16, 0                  # valpred = 0
        li   r17, 0                  # index = 0
        la   r20, stepsize
        lw   r18, 0(r20)             # step = stepsizeTable[0]
        li   r19, 0                  # bufferstep = 0 (need a byte first)
        li   r21, 0
        la   r22, indextab
        lw   r23, 4(r28)             # prime the remaining-count read

dec_loop:
        # Step 1: fetch the next 4-bit code (alternating branch). The
        # remaining-count is read one byte ahead (manual scheduling,
        # paper Sec. 8), making the exit branch foldable.
        bnez r19, dec_lownib         # [br_toggle]
        beqz r23, dec_done           # [br_exit]
        lw   r21, 0(r28)             # inputbuffer = next byte
        lw   r23, 4(r28)             # read-ahead remaining
        srl  r11, r21, 4
        andi r11, r11, 0x0f          # delta = high nibble
        li   r19, 1
        j    dec_body
dec_lownib:
        andi r11, r21, 0x0f          # delta = low nibble
        li   r19, 0
dec_body:
        # Manual scheduling: the three magnitude-bit tests are computed
        # here, a dozen slots before their branches consume them.
        andi r24, r11, 4
        andi r25, r11, 2
        andi r26, r11, 1

        # Step 2: adapt index (for the *next* step size).
        sll  r14, r11, 2
        add  r14, r14, r22
        lw   r14, 0(r14)
        add  r17, r17, r14
        bgez r17, dec_ix1            # [br_ixlo]
        li   r17, 0
dec_ix1:
        li   r14, 88
        sub  r15, r14, r17
        bgez r15, dec_ix2            # [br_ixhi]
        move r17, r14
dec_ix2:

        # Step 3: separate sign and magnitude.
        andi r10, r11, 8             # sign
        andi r11, r11, 7

        # Step 4: vpdiff from the *current* step (3 bit-test branches,
        # predicates pre-computed at dec_body — foldable).
        sra  r13, r18, 3
        beqz r24, dec_v2             # [br_v4]
        add  r13, r13, r18
dec_v2:
        sra  r15, r18, 1
        beqz r25, dec_v1             # [br_v2]
        add  r13, r13, r15
dec_v1:
        sra  r15, r18, 2
        beqz r26, dec_vs             # [br_v1]
        add  r13, r13, r15
dec_vs:
        beqz r10, dec_add            # [br_sign]
        sub  r16, r16, r13
        j    dec_clamp
dec_add:
        add  r16, r16, r13
dec_clamp:

        # Step 5: clamp the output value.
        li   r14, 32767
        slt  r15, r14, r16
        beqz r15, dec_cl2            # [br_clamp_hi]
        move r16, r14
dec_cl2:
        li   r14, -32768
        slt  r15, r16, r14
        beqz r15, dec_cl3            # [br_clamp_lo]
        move r16, r14
dec_cl3:

        # Step 6: adapt step, emit sample.
        sll  r14, r17, 2
        add  r14, r14, r20
        lw   r18, 0(r14)
        sw   r16, 8(r28)
        j    dec_loop

dec_done:
        halt

        .data
indextab:
        .word -1, -1, -1, -1, 2, 4, 6, 8
        .word -1, -1, -1, -1, 2, 4, 6, 8
stepsize:
        .word 7, 8, 9, 10, 11, 12, 13, 14, 16, 17
        .word 19, 21, 23, 25, 28, 31, 34, 37, 41, 45
        .word 50, 55, 60, 66, 73, 80, 88, 97, 107, 118
        .word 130, 143, 157, 173, 190, 209, 230, 253, 279, 307
        .word 337, 371, 408, 449, 494, 544, 598, 658, 724, 796
        .word 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066
        .word 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358
        .word 5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899
        .word 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767
