//! Table-driven semantics tests for the shared execution core: every ALU
//! operation checked against Rust reference semantics on boundary values.
//! Both simulators evaluate through this one function, so this table
//! certifies them jointly.

use asbr_isa::{Instr, Reg};
use asbr_sim::exec::execute;

const EDGE: [i32; 9] =
    [i32::MIN, i32::MIN + 1, -2, -1, 0, 1, 2, i32::MAX - 1, i32::MAX];

fn eval2(make: impl Fn(Reg, Reg, Reg) -> Instr, a: i32, b: i32) -> i32 {
    let rd = Reg::new(1);
    let rs = Reg::new(2);
    let rt = Reg::new(3);
    let fx = execute(make(rd, rs, rt), 0, |r| match r.index() {
        2 => a as u32,
        3 => b as u32,
        _ => 0,
    });
    fx.writeback.expect("ALU ops write back").1 as i32
}

#[test]
fn add_sub_match_wrapping_reference() {
    for &a in &EDGE {
        for &b in &EDGE {
            assert_eq!(
                eval2(|rd, rs, rt| Instr::Add { rd, rs, rt }, a, b),
                a.wrapping_add(b),
                "add {a} {b}"
            );
            assert_eq!(
                eval2(|rd, rs, rt| Instr::Sub { rd, rs, rt }, a, b),
                a.wrapping_sub(b),
                "sub {a} {b}"
            );
        }
    }
}

#[test]
fn logic_ops_match_reference() {
    for &a in &EDGE {
        for &b in &EDGE {
            assert_eq!(eval2(|rd, rs, rt| Instr::And { rd, rs, rt }, a, b), a & b);
            assert_eq!(eval2(|rd, rs, rt| Instr::Or { rd, rs, rt }, a, b), a | b);
            assert_eq!(eval2(|rd, rs, rt| Instr::Xor { rd, rs, rt }, a, b), a ^ b);
            assert_eq!(eval2(|rd, rs, rt| Instr::Nor { rd, rs, rt }, a, b), !(a | b));
        }
    }
}

#[test]
fn comparisons_match_reference() {
    for &a in &EDGE {
        for &b in &EDGE {
            assert_eq!(
                eval2(|rd, rs, rt| Instr::Slt { rd, rs, rt }, a, b),
                i32::from(a < b),
                "slt {a} {b}"
            );
            assert_eq!(
                eval2(|rd, rs, rt| Instr::Sltu { rd, rs, rt }, a, b),
                i32::from((a as u32) < (b as u32)),
                "sltu {a} {b}"
            );
        }
    }
}

#[test]
fn mul_div_rem_match_wrapping_reference() {
    for &a in &EDGE {
        for &b in &EDGE {
            assert_eq!(
                eval2(|rd, rs, rt| Instr::Mul { rd, rs, rt }, a, b),
                a.wrapping_mul(b),
                "mul {a} {b}"
            );
            let div_ref = if b == 0 { 0 } else { a.wrapping_div(b) };
            assert_eq!(eval2(|rd, rs, rt| Instr::Div { rd, rs, rt }, a, b), div_ref, "div {a} {b}");
            let rem_ref = if b == 0 { 0 } else { a.wrapping_rem(b) };
            assert_eq!(eval2(|rd, rs, rt| Instr::Rem { rd, rs, rt }, a, b), rem_ref, "rem {a} {b}");
        }
    }
}

#[test]
fn variable_shifts_mask_to_five_bits() {
    for &a in &EDGE {
        for sh in [0i32, 1, 5, 31, 32, 33, 63, -1] {
            // eval2 binds its first value argument to the closure's second
            // register (rt, the value) and its second to rs (the shift).
            let logical = eval2(|rd, rt, rs| Instr::Srlv { rd, rt, rs }, a, sh);
            assert_eq!(logical as u32, (a as u32) >> (sh as u32 & 31), "srlv {a} by {sh}");
            let arith = eval2(|rd, rt, rs| Instr::Srav { rd, rt, rs }, a, sh);
            assert_eq!(arith, a >> (sh as u32 & 31), "srav {a} by {sh}");
            let left = eval2(|rd, rt, rs| Instr::Sllv { rd, rt, rs }, a, sh);
            assert_eq!(left as u32, (a as u32) << (sh as u32 & 31), "sllv {a} by {sh}");
        }
    }
}

#[test]
fn immediate_ops_extend_correctly() {
    let rt = Reg::new(1);
    let rs = Reg::new(2);
    for &a in &EDGE {
        for imm in [i16::MIN, -1, 0, 1, i16::MAX] {
            let read = |r: Reg| if r.index() == 2 { a as u32 } else { 0 };
            let addi = execute(Instr::Addi { rt, rs, imm }, 0, read).writeback.unwrap().1 as i32;
            assert_eq!(addi, a.wrapping_add(i32::from(imm)), "addi {a} {imm}");
            let slti = execute(Instr::Slti { rt, rs, imm }, 0, read).writeback.unwrap().1;
            assert_eq!(slti, u32::from(a < i32::from(imm)));
            let sltiu = execute(Instr::Sltiu { rt, rs, imm }, 0, read).writeback.unwrap().1;
            // The immediate is sign-extended, then compared unsigned.
            assert_eq!(sltiu, u32::from((a as u32) < (i32::from(imm) as u32)));
            let uimm = imm as u16;
            let andi = execute(Instr::Andi { rt, rs, imm: uimm }, 0, read).writeback.unwrap().1;
            assert_eq!(andi, (a as u32) & u32::from(uimm), "andi zero-extends");
        }
    }
}

#[test]
fn branch_conditions_match_cond_eval() {
    use asbr_isa::Cond;
    use asbr_sim::exec::ControlEffect;
    for &v in &EDGE {
        for cond in Cond::ALL {
            let b = Instr::BranchZ { cond, rs: Reg::new(2), off: 4 };
            let fx = execute(b, 0x100, |_| v as u32);
            match fx.control.unwrap() {
                ControlEffect::Branch { taken, target } => {
                    assert_eq!(taken, cond.eval(v), "{cond} on {v}");
                    assert_eq!(target, 0x100 + 4 + 16);
                }
                other => panic!("{other:?}"),
            }
        }
    }
}
