//! Differential property testing: random guest programs must leave the
//! cycle-accurate pipeline and the functional interpreter in identical
//! architectural state. This is the strongest correctness net over the
//! pipeline's forwarding, interlock, flush and cache machinery.

use asbr_asm::assemble;
use asbr_bpred::PredictorKind;
use asbr_isa::Reg;
use asbr_sim::{Interp, Pipeline, PipelineConfig};
use proptest::prelude::*;

/// A tiny structured program generator: a loop over a body of random ALU
/// ops, memory accesses into a private scratch buffer, and forward
/// branches — always terminating because the loop counter is fixed.
#[derive(Debug, Clone)]
enum Op {
    Alu { kind: u8, rd: u8, rs: u8, rt: u8 },
    Imm { kind: u8, rt: u8, rs: u8, imm: i16 },
    Shift { kind: u8, rd: u8, rt: u8, sh: u8 },
    Load { rt: u8, slot: u8 },
    Store { rt: u8, slot: u8 },
    SkipIf { cond: u8, rs: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8, 2u8..16, 2u8..16, 2u8..16)
            .prop_map(|(kind, rd, rs, rt)| Op::Alu { kind, rd, rs, rt }),
        (0u8..4, 2u8..16, 2u8..16, any::<i16>())
            .prop_map(|(kind, rt, rs, imm)| Op::Imm { kind, rt, rs, imm }),
        (0u8..3, 2u8..16, 2u8..16, 0u8..32)
            .prop_map(|(kind, rd, rt, sh)| Op::Shift { kind, rd, rt, sh }),
        (2u8..16, 0u8..16).prop_map(|(rt, slot)| Op::Load { rt, slot }),
        (2u8..16, 0u8..16).prop_map(|(rt, slot)| Op::Store { rt, slot }),
        (0u8..6, 2u8..16).prop_map(|(cond, rs)| Op::SkipIf { cond, rs }),
    ]
}

fn render(ops: &[Op], iterations: u32) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    s.push_str("main:\n");
    let _ = writeln!(s, "        li   r20, {iterations}");
    s.push_str("        la   r21, scratch\n");
    // Seed some registers so the dataflow isn't all zeros.
    for r in 2i32..16 {
        let seed = (r.wrapping_mul(2654435761u32 as i32) >> 8) as i16;
        let _ = writeln!(s, "        li   r{r}, {seed}");
    }
    s.push_str("loop:\n");
    let mut skip = 0usize;
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Alu { kind, rd, rs, rt } => {
                let m = ["add", "sub", "and", "or", "xor", "slt", "mul", "nor"][kind as usize];
                let _ = writeln!(s, "        {m}  r{rd}, r{rs}, r{rt}");
            }
            Op::Imm { kind, rt, rs, imm } => {
                let m = ["addi", "andi", "ori", "slti"][kind as usize];
                let imm = if kind == 1 || kind == 2 { i32::from(imm).unsigned_abs() as i32 & 0xFFFF } else { i32::from(imm) };
                let _ = writeln!(s, "        {m} r{rt}, r{rs}, {imm}");
            }
            Op::Shift { kind, rd, rt, sh } => {
                let m = ["sll", "srl", "sra"][kind as usize];
                let _ = writeln!(s, "        {m}  r{rd}, r{rt}, {sh}");
            }
            Op::Load { rt, slot } => {
                let _ = writeln!(s, "        lw   r{rt}, {}(r21)", u32::from(slot) * 4);
            }
            Op::Store { rt, slot } => {
                let _ = writeln!(s, "        sw   r{rt}, {}(r21)", u32::from(slot) * 4);
            }
            Op::SkipIf { cond, rs } => {
                let m = ["beqz", "bnez", "blez", "bgtz", "bltz", "bgez"][cond as usize];
                let _ = writeln!(s, "        {m} r{rs}, fwd_{skip}_{i}");
                let _ = writeln!(s, "        addi r17, r17, 1");
                let _ = writeln!(s, "fwd_{skip}_{i}:");
                skip += 1;
            }
        }
    }
    s.push_str("        addi r20, r20, -1\n");
    s.push_str("        bnez r20, loop\n");
    s.push_str("        halt\n");
    s.push_str(".data\nscratch: .space 128\n");
    s
}

fn run_both(src: &str, kind: PredictorKind) -> ([u32; 32], [u32; 32], u64, u64) {
    let prog = assemble(src).expect("generated program assembles");
    let mut it = Interp::new(&prog).expect("valid text");
    it.run(20_000_000).expect("interp halts");
    let mut pipe = Pipeline::new(PipelineConfig::default(), kind.build());
    pipe.load(&prog).expect("valid text");
    let p = pipe.run().expect("pipeline halts");
    let mut a = [0u32; 32];
    let mut b = [0u32; 32];
    for r in Reg::all() {
        a[usize::from(r)] = it.reg(r);
        b[usize::from(r)] = pipe.reg(r);
    }
    (a, b, it.instructions(), p.stats.retired)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full architectural state agreement across engines, under a dynamic
    /// predictor (exercising flush paths) and a static one.
    #[test]
    fn pipeline_matches_interpreter(
        ops in proptest::collection::vec(arb_op(), 1..24),
        iterations in 1u32..12,
        dyn_pred in any::<bool>(),
    ) {
        let src = render(&ops, iterations);
        let kind = if dyn_pred {
            PredictorKind::Gshare { hist_bits: 7, entries: 256 }
        } else {
            PredictorKind::NotTaken
        };
        let (a, b, ni, np) = run_both(&src, kind);
        prop_assert_eq!(ni, np, "retire count mismatch\n{}", src);
        prop_assert_eq!(a, b, "register state mismatch\n{}", src);
    }

    /// Microarchitectural knobs (functional-unit latency, return stack,
    /// BTB size) change timing only — never architectural state.
    #[test]
    fn pipeline_config_never_changes_results(
        ops in proptest::collection::vec(arb_op(), 1..20),
        iterations in 1u32..10,
        mul_latency in 1u32..9,
        div_latency in 1u32..20,
        ras in any::<bool>(),
        btb_pow in 0u32..8,
    ) {
        let src = render(&ops, iterations);
        let prog = assemble(&src).expect("assembles");
        let mut it = Interp::new(&prog).expect("valid text");
        it.run(20_000_000).expect("interp halts");

        let mut pipe = Pipeline::new(
            PipelineConfig {
                mul_latency,
                div_latency,
                ras_entries: if ras { 4 } else { 0 },
                btb_entries: if btb_pow == 0 { 0 } else { 1 << btb_pow },
                ..PipelineConfig::default()
            },
            PredictorKind::Bimodal { entries: 128 }.build(),
        );
        pipe.load(&prog).expect("valid text");
        pipe.run().expect("pipeline halts");
        for r in Reg::all() {
            prop_assert_eq!(pipe.reg(r), it.reg(r), "r{} mismatch\n{}", r.index(), src);
        }
    }
}
