//! Cycle-accurate 5-stage in-order pipeline.
//!
//! Stage model (paper Sec. 8: "A pipelined architecture with a 5 stage
//! pipeline, in-order single issue"):
//!
//! * **IF** — one fetch per cycle through the I-cache (misses hold the
//!   slot for the refill penalty). The fetch customization hook
//!   ([`SimHooks::try_fold`]) is consulted first; on a fold the fetched
//!   branch is replaced by its pre-decoded target/fall-through instruction
//!   and fetch is redirected with certainty — no prediction, no possible
//!   flush. Otherwise conditional branches are predicted (direction
//!   predictor + BTB for the taken target).
//! * **ID** — register read (modelled at EX entry with forwarding),
//!   one-cycle load-use interlock, and direct-jump (`j`/`jal`) redirect
//!   costing one squashed fetch slot.
//! * **EX** — ALU, branch resolution. A wrong-path fetch costs two
//!   squashed slots (the classic 2-cycle penalty of a 5-stage pipe).
//!   Indirect jumps (`jr`/`jalr`) resolve here too.
//! * **MEM** — D-cache access; a miss freezes the upstream stages for the
//!   refill penalty. MMIO bypasses the cache.
//! * **WB** — register commit and retirement.
//!
//! Register-value *publishes* to the fetch customization happen at the
//! hook's [`PublishPoint`]: end of EX (loads still publish after MEM), end
//! of MEM, or at commit — realising the threshold-2/3/4 variants of paper
//! Sec. 5.2.

use asbr_asm::{Program, STACK_TOP};
use asbr_bpred::{Btb, Predictor, ReturnStack};
use asbr_isa::{Instr, Reg, INSTR_BYTES};
use asbr_mem::{MemSystem, MemSystemConfig};

use crate::checkpoint::Checkpoint;
use crate::code::{CodeStore, RasClass, SlotMeta};
use crate::exec::{execute, extend_load, ControlEffect, ExecEffect};
use crate::hooks::{NullHooks, PublishPoint, SimHooks};
use crate::stats::{CycleBucket, PipelineStats};
use crate::SimError;

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Memory-system geometry (caches).
    pub mem: MemSystemConfig,
    /// Branch-target-buffer entries (0 disables the BTB: taken
    /// predictions then cannot redirect fetch).
    pub btb_entries: usize,
    /// Return-address-stack entries predicting `jr ra` targets at fetch
    /// (0 disables it — the paper's baseline, where every return flushes).
    pub ras_entries: usize,
    /// EX-stage occupancy of a multiply, in cycles (≥1). The default 1
    /// models a fully pipelined single-cycle multiplier, as the paper's
    /// SimpleScalar configuration does.
    pub mul_latency: u32,
    /// EX-stage occupancy of a divide/remainder, in cycles (≥1).
    pub div_latency: u32,
    /// Cycle budget; exceeding it returns [`SimError::Limit`].
    pub max_cycles: u64,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            mem: MemSystemConfig::default(),
            btb_entries: 2048,
            ras_entries: 0,
            mul_latency: 1,
            div_latency: 1,
            max_cycles: 2_000_000_000,
        }
    }
}

/// Result of a completed pipelined run.
#[derive(Debug, Clone)]
pub struct PipelineSummary {
    /// Performance counters.
    pub stats: PipelineStats,
    /// Output samples the guest produced.
    pub output: Vec<i32>,
    /// Whether the guest executed `halt` (always true on `Ok` returns).
    pub halted: bool,
}

/// One instruction in flight.
#[derive(Debug, Clone)]
struct Slot {
    pc: u32,
    instr: Instr,
    /// Static metadata precomputed at load (or at fold time), so the
    /// per-cycle stages never re-derive dst/branch/latency facts.
    meta: SlotMeta,
    /// Where fetch continued after this slot (for EX control checking).
    assumed_next: u32,
    /// Direction the predictor chose (conditional branches only).
    predicted_taken: Option<bool>,
    /// Register announced to the hooks whose publish is still owed.
    writer_pending: Option<Reg>,
    /// Filled at EX.
    fx: Option<ExecEffect>,
    /// Final writeback value (ALU at EX; loads at MEM).
    value: Option<(Reg, u32)>,
}

/// A wrong-path resolution in EX: where fetch restarts, and which
/// instruction (and kind) caused it — the flush bubbles it creates are
/// attributed back to this origin.
struct Redirect {
    target: u32,
    pc: u32,
    indirect: bool,
}

/// A bubble tag: the cause a latch's emptiness is attributed to, plus the
/// PC of the instruction that created the bubble (0 for fill/drain).
type Gap = (CycleBucket, u32);

const GAP_FILL: Gap = (CycleBucket::FillDrain, 0);

impl Slot {
    fn new(pc: u32, instr: Instr, meta: SlotMeta) -> Slot {
        Slot {
            pc,
            instr,
            meta,
            assumed_next: pc.wrapping_add(INSTR_BYTES),
            predicted_taken: None,
            writer_pending: None,
            fx: None,
            value: None,
        }
    }
}

/// The cycle-accurate simulator, generic over the fetch customization.
///
/// See the crate-level example for typical use; for ASBR runs construct
/// with [`Pipeline::with_hooks`] and recover the unit afterwards with
/// [`Pipeline::into_hooks`] or inspect it via [`Pipeline::hooks`].
pub struct Pipeline<H: SimHooks = NullHooks> {
    cfg: PipelineConfig,
    regs: [u32; 32],
    pc: u32,
    mem: MemSystem,
    code: CodeStore,
    pred: Box<dyn Predictor>,
    btb: Option<Btb>,
    ras: Option<ReturnStack>,
    hooks: H,

    // Latches, upstream to downstream.
    fetching: Option<(Slot, u32)>,
    if_id: Option<Slot>,
    id_ex: Option<Slot>,
    ex_hold: Option<(Slot, u32)>,
    ex_mem: Option<Slot>,
    mem_hold: Option<(Slot, u32)>,
    mem_wb: Option<Slot>,

    // Bubble tags shadowing the latches: when a latch is left empty for
    // the next consumer, the matching gap records why. Bubbles flow
    // downstream with the pipeline; WB charges each one to its bucket,
    // so every cycle lands in exactly one attribution bucket.
    gap_if_id: Gap,
    gap_id_ex: Gap,
    gap_ex_mem: Gap,
    gap_mem_wb: Gap,

    halted: bool,
    halt_fetched: bool,
    stats: PipelineStats,
    tracer: Option<Box<dyn SimHooks>>,
}

impl Pipeline<NullHooks> {
    /// Creates a baseline (uncustomized) pipeline.
    ///
    /// # Panics
    ///
    /// Panics on degenerate cache or BTB geometry.
    #[must_use]
    pub fn new(cfg: PipelineConfig, pred: Box<dyn Predictor>) -> Pipeline<NullHooks> {
        Pipeline::with_hooks(cfg, pred, NullHooks)
    }
}

impl<H: SimHooks> Pipeline<H> {
    /// Creates a pipeline with a fetch customization (e.g. the ASBR unit).
    ///
    /// # Panics
    ///
    /// Panics on degenerate cache or BTB geometry.
    #[must_use]
    pub fn with_hooks(cfg: PipelineConfig, pred: Box<dyn Predictor>, hooks: H) -> Pipeline<H> {
        let mut regs = [0u32; 32];
        regs[usize::from(Reg::SP)] = STACK_TOP;
        Pipeline {
            cfg,
            regs,
            pc: 0,
            mem: MemSystem::new(cfg.mem),
            code: CodeStore::empty(),
            pred,
            btb: (cfg.btb_entries > 0).then(|| Btb::new(cfg.btb_entries)),
            ras: (cfg.ras_entries > 0).then(|| ReturnStack::new(cfg.ras_entries)),
            hooks,
            fetching: None,
            if_id: None,
            id_ex: None,
            ex_hold: None,
            ex_mem: None,
            mem_hold: None,
            mem_wb: None,
            gap_if_id: GAP_FILL,
            gap_id_ex: GAP_FILL,
            gap_ex_mem: GAP_FILL,
            gap_mem_wb: GAP_FILL,
            halted: false,
            halt_fetched: false,
            stats: PipelineStats::default(),
            tracer: None,
        }
    }

    /// Attaches a trace sink receiving per-cycle attribution and
    /// commit/fold/flush events (the trace-event subset of [`SimHooks`]).
    pub fn set_tracer(&mut self, tracer: Box<dyn SimHooks>) {
        self.tracer = Some(tracer);
    }

    /// Detaches and returns the trace sink, if one was attached.
    pub fn take_tracer(&mut self) -> Option<Box<dyn SimHooks>> {
        self.tracer.take()
    }

    /// Loads `program` and points fetch at its entry.
    ///
    /// The whole text segment is validated and decoded here, exactly once
    /// (see [`asbr_asm::DecodedProgram`]): the fetch stage then indexes
    /// the pre-decoded store instead of re-decoding every dynamic fetch,
    /// while I-cache timing is still modelled on the word stream.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidText`] listing every undecodable text
    /// word. Assembled programs always pass; only hand-built or rewritten
    /// images can fail.
    pub fn load(&mut self, program: &Program) -> Result<(), SimError> {
        let decoded = program.decoded().map_err(|source| SimError::InvalidText { source })?;
        program.load_into(self.mem.memory_mut());
        self.pc = program.entry();
        self.code = CodeStore::new(decoded, self.cfg.mul_latency, self.cfg.div_latency);
        // Bake per-PC fold candidacy into the pre-decoded metadata so the
        // fetch fast path can skip `try_fold` for never-foldable PCs.
        let hooks = &self.hooks;
        self.code.mark_fold_candidates(|pc| hooks.fold_candidate(pc));
        Ok(())
    }

    /// Loads `program`, then overwrites the architectural state with a
    /// mid-run [`Checkpoint`] captured by [`crate::Interp::checkpoint`]:
    /// registers, PC, the full memory image (including MMIO input/output
    /// progress), and the D-cache as warmed by the architectural access
    /// stream. The pipeline itself restarts empty — latches, counters,
    /// predictor, BTB, RAS, and I-cache state are those of a fresh
    /// machine (see [`crate::Checkpoint`] for why those are not
    /// capturable), so sampled execution warms them with a discarded
    /// detailed prefix.
    ///
    /// The checkpoint must come from an interpreter built with this
    /// pipeline's memory geometry (`Interp::with_config(cfg.mem, ..)`)
    /// over the same `program`; the restored memory image simply replaces
    /// the loaded one.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidText`] as [`Pipeline::load`] does.
    pub fn restore(&mut self, program: &Program, ckpt: &Checkpoint) -> Result<(), SimError> {
        self.load(program)?;
        self.mem = ckpt.mem.clone();
        self.regs = ckpt.regs;
        self.pc = ckpt.pc;
        self.fetching = None;
        self.if_id = None;
        self.id_ex = None;
        self.ex_hold = None;
        self.ex_mem = None;
        self.mem_hold = None;
        self.mem_wb = None;
        self.gap_if_id = GAP_FILL;
        self.gap_id_ex = GAP_FILL;
        self.gap_ex_mem = GAP_FILL;
        self.gap_mem_wb = GAP_FILL;
        self.halted = ckpt.halted;
        self.halt_fetched = ckpt.halted;
        self.stats = PipelineStats::default();
        // Adopt the functionally warmed predictor when the checkpoint
        // carries one — a fresh predictor can *never* converge to the
        // long-run counter states on alternating-pattern branches, so
        // detailed warm-up alone leaves a systematic mispredict bias.
        if let Some(p) = &ckpt.pred {
            self.pred = p.clone_box();
        }
        // The register file just changed under the hooks' feet; let units
        // that shadow it (the ASBR BDT) resynchronize before any fetch.
        self.hooks.note_restore(&self.regs);
        if !ckpt.pristine {
            // The capturing engine saw text-modifying stores (or raw
            // memory access): the rebuilt pre-decoded store may not match
            // the checkpointed image, so take the always-exact slow path.
            self.code.distrust();
        }
        Ok(())
    }

    /// Queues input samples for the MMIO device.
    pub fn feed_input<I: IntoIterator<Item = i32>>(&mut self, samples: I) {
        self.mem.io_mut().extend_input(samples);
    }

    /// The fetch customization unit.
    #[must_use]
    pub fn hooks(&self) -> &H {
        &self.hooks
    }

    /// Consumes the pipeline, returning the fetch customization unit
    /// (e.g. to read ASBR fold statistics after a run).
    #[must_use]
    pub fn into_hooks(self) -> H {
        self.hooks
    }

    /// Accumulated performance counters.
    #[must_use]
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    /// The memory system (for cache statistics or output inspection).
    #[must_use]
    pub fn mem(&self) -> &MemSystem {
        &self.mem
    }

    /// Reads an architectural register (useful in tests).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[usize::from(r)]
    }

    /// Whether `halt` has committed.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// A pipeline-diagram view of the current cycle (which instruction
    /// occupies each stage). Drive the machine with [`Pipeline::cycle`]
    /// and snapshot between cycles to trace execution.
    #[must_use]
    pub fn snapshot(&self) -> crate::PipeSnapshot {
        use crate::{PipeSnapshot, StageView};
        let view = |s: &Slot| StageView { pc: s.pc, instr: s.instr };
        PipeSnapshot {
            cycle: self.stats.cycles,
            fetch: self.fetching.as_ref().map(|(s, d)| (view(s), *d)),
            decode: self.if_id.as_ref().map(view),
            execute: self
                .ex_hold
                .as_ref()
                .map(|(s, d)| (view(s), *d))
                .or_else(|| self.id_ex.as_ref().map(|s| (view(s), 0))),
            memory: self
                .mem_hold
                .as_ref()
                .map(|(s, d)| (view(s), *d))
                .or_else(|| self.ex_mem.as_ref().map(|s| (view(s), 0))),
            writeback: self.mem_wb.as_ref().map(view),
        }
    }

    /// Loads `program`, queues `input`, and runs until `halt` commits —
    /// the one-call form of the `load`/`feed_input`/`run` sequence every
    /// caller otherwise hand-sequences.
    ///
    /// ```
    /// use asbr_asm::assemble;
    /// use asbr_bpred::PredictorKind;
    /// use asbr_sim::{Pipeline, PipelineConfig};
    ///
    /// let prog = assemble("main: halt")?;
    /// let mut pipe = Pipeline::new(PipelineConfig::default(), PredictorKind::NotTaken.build());
    /// let summary = pipe.execute(&prog, [])?;
    /// assert!(summary.halted);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the run.
    pub fn execute(
        &mut self,
        program: &Program,
        input: impl IntoIterator<Item = i32>,
    ) -> Result<PipelineSummary, SimError> {
        self.load(program)?;
        self.feed_input(input);
        self.run()
    }

    /// Runs until `halt` commits.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Limit`] past the configured `max_cycles`, or
    /// the decode/memory errors of [`Pipeline::cycle`].
    pub fn run(&mut self) -> Result<PipelineSummary, SimError> {
        while !self.halted {
            if self.stats.cycles >= self.cfg.max_cycles {
                return Err(SimError::Limit { limit: self.cfg.max_cycles });
            }
            self.cycle()?;
        }
        Ok(PipelineSummary {
            stats: self.stats.clone(),
            output: self.mem.io().output().to_vec(),
            halted: true,
        })
    }

    /// Runs until `target` instructions have retired (or `halt` commits
    /// first) — the windowed form of [`Pipeline::run`] used by sampled
    /// simulation, where a window is a retire-count interval rather than
    /// a full run.
    ///
    /// Returns `Ok(true)` when the retire target was reached with the
    /// machine still running, `Ok(false)` when it halted first.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Limit`] past the configured `max_cycles`, or
    /// the decode/memory errors of [`Pipeline::cycle`].
    pub fn run_until_retired(&mut self, target: u64) -> Result<bool, SimError> {
        while !self.halted && self.stats.retired < target {
            if self.stats.cycles >= self.cfg.max_cycles {
                return Err(SimError::Limit { limit: self.cfg.max_cycles });
            }
            self.cycle()?;
        }
        Ok(!self.halted)
    }

    /// Advances the machine by one cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on undecodable fetched words or memory faults.
    pub fn cycle(&mut self) -> Result<(), SimError> {
        if self.halted {
            return Ok(());
        }
        self.stats.cycles += 1;

        // WB runs first and charges this cycle to exactly one attribution
        // bucket: useful on a retire, the bubble's recorded cause
        // otherwise. Every return path below goes through it exactly
        // once, which is what makes `sum(buckets) == cycles` structural.
        self.stage_wb();
        debug_assert_eq!(self.stats.attribution.total(), self.stats.cycles);
        debug_assert_eq!(self.stats.attribution.get(CycleBucket::Useful), self.stats.retired);
        if self.halted {
            return Ok(());
        }

        // MEM: drain an in-progress miss (upstream frozen), or accept the
        // next slot from EX.
        if let Some((slot, remaining)) = self.mem_hold.take() {
            self.stats.dcache_stall_cycles += 1;
            self.gap_mem_wb = (CycleBucket::DcacheStall, slot.pc);
            if remaining > 1 {
                self.mem_hold = Some((slot, remaining - 1));
            } else {
                self.finish_mem(slot);
            }
            return Ok(()); // EX/ID/IF frozen while MEM drains
        }
        let mem_missed = self.stage_mem()?;
        if mem_missed {
            return Ok(()); // miss detected this cycle: freeze upstream
        }

        if let Some(r) = self.stage_ex() {
            // Wrong-path fetch: squash the decode slot and any fetch in
            // flight, swallow this cycle's fetch. Two slots lost, both
            // attributed to the resolving instruction.
            self.squash_if_id_and_fetch();
            let bucket =
                if r.indirect { CycleBucket::IndirectFlush } else { CycleBucket::BranchFlush };
            self.gap_if_id = (bucket, r.pc);
            self.gap_id_ex = (bucket, r.pc);
            if let Some(t) = self.tracer.as_mut() {
                t.on_flush(self.stats.cycles, r.pc, r.indirect);
            }
            self.pc = r.target;
            self.halt_fetched = false;
            return Ok(());
        }

        if let Some(redirect) = self.stage_id() {
            // Direct jump resolved in decode: one fetch slot lost.
            self.squash_fetch_in_flight();
            self.pc = redirect;
            self.halt_fetched = false;
            return Ok(());
        }

        self.stage_if()
    }

    // ------------------------------------------------------------------
    // Stages
    // ------------------------------------------------------------------

    /// Charges the current cycle to `bucket` (per-cycle attribution plus
    /// the optional trace sink).
    fn charge(&mut self, bucket: CycleBucket, origin_pc: u32) {
        self.stats.attribution.charge(bucket, origin_pc);
        if let Some(t) = self.tracer.as_mut() {
            t.on_cycle(self.stats.cycles, bucket, origin_pc);
        }
    }

    fn stage_wb(&mut self) {
        let Some(slot) = self.mem_wb.take() else {
            let (bucket, origin) = self.gap_mem_wb;
            self.charge(bucket, origin);
            return;
        };
        self.charge(CycleBucket::Useful, slot.pc);
        if slot.meta.is_branch {
            self.stats.attribution.note_branch_retire(slot.pc);
        }
        if let Some(t) = self.tracer.as_mut() {
            t.on_commit(self.stats.cycles, slot.pc);
        }
        if let Some((r, v)) = slot.value {
            if !r.is_zero() {
                self.regs[usize::from(r)] = v;
                self.stats.activity.reg_writes += 1;
            }
        }
        if let Some(wr) = slot.writer_pending {
            debug_assert_eq!(self.hooks.publish_point(), PublishPoint::Commit);
            let v = slot.value.expect("announced writer has a value").1;
            self.hooks.note_publish(wr, v);
        }
        self.stats.retired += 1;
        if slot.fx.as_ref().is_some_and(|fx| fx.halt) {
            self.halted = true;
        }
    }

    /// Returns `true` when a D-cache miss started this cycle (upstream
    /// must freeze).
    fn stage_mem(&mut self) -> Result<bool, SimError> {
        let Some(mut slot) = self.ex_mem.take() else {
            // Bubble flows from EX/MEM into MEM/WB, cause unchanged.
            self.gap_mem_wb = self.gap_ex_mem;
            return Ok(false);
        };
        let fx = slot.fx.expect("EX ran before MEM");
        if fx.mem.is_some() {
            self.stats.activity.mem_ops += 1;
        }
        if let Some(op) = fx.mem {
            let penalty = if let Some(value) = op.store {
                let penalty = self
                    .mem
                    .timed_write(op.addr, value, op.bytes)
                    .map_err(|source| SimError::Mem { pc: slot.pc, source })?;
                // Self-modifying code: a store landing in text invalidates
                // the pre-decoded words it touches.
                self.code.note_store(op.addr, op.bytes);
                penalty
            } else {
                let access = self
                    .mem
                    .timed_read(op.addr, op.bytes)
                    .map_err(|source| SimError::Mem { pc: slot.pc, source })?;
                let width = match op.bytes {
                    1 => asbr_isa::MemWidth::Byte,
                    2 => asbr_isa::MemWidth::Half,
                    _ => asbr_isa::MemWidth::Word,
                };
                let dst = fx.load_dst.expect("loads have a destination");
                slot.value = Some((dst, extend_load(access.value, width, op.unsigned)));
                access.penalty
            };
            if penalty > 0 {
                // The refill freezes EX/ID/IF: both the bubble entering
                // MEM/WB and the one EX cannot refill behind us are the
                // miss's fault.
                self.gap_mem_wb = (CycleBucket::DcacheStall, slot.pc);
                self.gap_ex_mem = (CycleBucket::DcacheStall, slot.pc);
                self.mem_hold = Some((slot, penalty));
                return Ok(true);
            }
        } else {
            slot.value = fx.writeback;
        }
        self.finish_mem(slot);
        Ok(false)
    }

    /// Completes the MEM stage: stage-appropriate publish, then latch into
    /// MEM/WB.
    fn finish_mem(&mut self, mut slot: Slot) {
        if slot.value.is_none() {
            slot.value = slot.fx.as_ref().and_then(|fx| fx.writeback);
        }
        let point = self.hooks.publish_point();
        if point != PublishPoint::Commit {
            // Mem point: everything publishes here. Execute point: only
            // loads still owe their publish (ALU published at EX).
            if let (Some(wr), Some((r, v))) = (slot.writer_pending, slot.value) {
                debug_assert_eq!(wr, r);
                self.hooks.note_publish(wr, v);
                slot.writer_pending = None;
            }
        }
        self.mem_wb = Some(slot);
    }

    /// Executes the instruction in ID/EX (or drains a multi-cycle EX
    /// operation). Returns a redirect on a wrong-path fetch.
    fn stage_ex(&mut self) -> Option<Redirect> {
        if let Some((slot, remaining)) = self.ex_hold.take() {
            self.stats.ex_stall_cycles += 1;
            if remaining > 1 {
                self.gap_ex_mem = (CycleBucket::ExOccupancy, slot.pc);
                self.ex_hold = Some((slot, remaining - 1));
                return None;
            }
            return self.finish_ex(slot);
        }
        let Some(slot) = self.id_ex.take() else {
            // Bubble flows from ID/EX into EX/MEM, cause unchanged.
            self.gap_ex_mem = self.gap_id_ex;
            return None;
        };
        let latency = slot.meta.latency;
        if latency > 1 {
            // The operation occupies EX for `latency` cycles; its result
            // is produced on the last one.
            self.gap_ex_mem = (CycleBucket::ExOccupancy, slot.pc);
            self.ex_hold = Some((slot, latency - 1));
            return None;
        }
        self.finish_ex(slot)
    }

    /// Completes the execute stage for `slot`.
    fn finish_ex(&mut self, slot: Slot) -> Option<Redirect> {
        let mut slot = slot;

        // Operand forwarding: the 1-ahead instruction's result was just
        // produced by MEM this cycle (EX/MEM forwarding in hardware
        // terms); anything older is already in the register file (WB ran
        // first).
        let fwd = self.mem_wb.as_ref().and_then(|s| s.value);
        let regs = &self.regs;
        let read = |r: Reg| -> u32 {
            if r.is_zero() {
                return 0;
            }
            if let Some((fr, fv)) = fwd {
                if fr == r {
                    return fv;
                }
            }
            regs[usize::from(r)]
        };
        let fx = execute(slot.instr, slot.pc, read);
        slot.fx = Some(fx);
        self.stats.activity.executed += 1;

        let mut redirect = None;
        if let Some(ctl) = fx.control {
            let actual_next = ctl.next_pc(slot.pc);
            match ctl {
                ControlEffect::Branch { taken, target } => {
                    // Folded branches never reach EX; a conditional branch
                    // here always carries a prediction (fold replacements
                    // that are themselves branches default to not-taken).
                    let predicted = slot.predicted_taken.unwrap_or(false);
                    self.stats.branches.record(slot.pc, predicted, taken);
                    self.pred.update(slot.pc, taken);
                    self.stats.activity.predictor_updates += 1;
                    if taken {
                        if let Some(btb) = &mut self.btb {
                            btb.update(slot.pc, target);
                        }
                    }
                    if actual_next != slot.assumed_next {
                        self.stats.branch_flushes += 1;
                        self.stats.attribution.note_flush(slot.pc);
                        redirect =
                            Some(Redirect { target: actual_next, pc: slot.pc, indirect: false });
                    }
                }
                ControlEffect::Jump { .. } => {
                    // Direct jumps redirected at ID (assumed_next already
                    // equals the target); indirect jumps resolve here.
                    if actual_next != slot.assumed_next {
                        self.stats.indirect_flushes += 1;
                        redirect =
                            Some(Redirect { target: actual_next, pc: slot.pc, indirect: true });
                    }
                }
            }
        }
        if let Some((ctrl, value)) = fx.ctrl_write {
            self.hooks.note_ctrl_write(ctrl, value);
        }
        if self.hooks.publish_point() == PublishPoint::Execute {
            if let (Some(wr), Some((r, v))) = (slot.writer_pending, fx.writeback) {
                debug_assert_eq!(wr, r);
                self.hooks.note_publish(wr, v);
                slot.writer_pending = None;
            }
        }
        self.ex_mem = Some(slot);
        redirect
    }

    /// Moves IF/ID into ID/EX unless the load-use interlock holds it.
    /// Returns a redirect target when a direct jump resolves in decode.
    fn stage_id(&mut self) -> Option<u32> {
        if self.id_ex.is_some() {
            return None; // EX is draining a multi-cycle operation
        }
        let Some(slot) = self.if_id.take() else {
            // Bubble flows from IF/ID into ID/EX, cause unchanged.
            self.gap_id_ex = self.gap_if_id;
            return None;
        };

        // Load-use interlock: the instruction one ahead (now in EX/MEM)
        // is a load producing a register we read.
        if let Some(ahead) = &self.ex_mem {
            if let Some(fx) = &ahead.fx {
                if let Some(dst) = fx.load_dst {
                    let srcs = slot.meta.srcs;
                    if srcs.iter().flatten().any(|&s| s == dst) {
                        self.stats.load_use_stalls += 1;
                        self.gap_id_ex = (CycleBucket::LoadUse, slot.pc);
                        self.if_id = Some(slot);
                        return None;
                    }
                }
            }
        }

        let mut slot = slot;
        self.stats.activity.decoded += 1;
        let mut redirect = None;
        if let Some(target) = slot.meta.direct_target {
            if target != slot.assumed_next {
                slot.assumed_next = target;
                self.stats.jump_redirects += 1;
                // Fetch is squashed and skipped this cycle: the slot it
                // would have delivered is the jump's bubble.
                self.gap_if_id = (CycleBucket::JumpRedirect, slot.pc);
                redirect = Some(target);
            }
        }
        self.id_ex = Some(slot);
        redirect
    }

    fn stage_if(&mut self) -> Result<(), SimError> {
        // Deliver (or keep refilling) an in-flight fetch first.
        if let Some((slot, mut delay)) = self.fetching.take() {
            if delay > 0 {
                delay -= 1;
                self.stats.icache_stall_cycles += 1;
            }
            if delay == 0 && self.if_id.is_none() {
                self.if_id = Some(slot);
            } else {
                if self.if_id.is_none() {
                    // Still refilling with decode hungry: the empty slot
                    // is the refill's fault.
                    self.gap_if_id = (CycleBucket::IcacheStall, slot.pc);
                }
                self.fetching = Some((slot, delay));
            }
            return Ok(());
        }
        if self.if_id.is_some() {
            return Ok(()); // decode is stalled; nothing to refill
        }
        if self.halt_fetched {
            self.gap_if_id = GAP_FILL; // fetch has drained behind `halt`
            return Ok(());
        }

        let pc = self.pc;
        // Decode-once fast path: an in-text, pristine pc hits the
        // pre-decoded store — no memory read, no decode. The I-cache is
        // still consulted for timing, so penalties (and stats) are
        // identical to the word-stream fetch.
        let (word, predecoded, penalty) = match self.code.fetch(pc) {
            Some((instr, word, meta)) => (word, Some((instr, meta)), self.mem.fetch_penalty(pc)),
            None => {
                let access = self
                    .mem
                    .fetch_instr(pc)
                    .map_err(|source| SimError::Mem { pc, source })?;
                (access.value, None, access.penalty)
            }
        };

        // Precomputed candidacy gate: a fast-path fetch whose load-time
        // `fold_candidate` answer was `false` skips the hooks entirely.
        // Slow-path fetches (out-of-text, dirtied, distrusted) always ask.
        let folded = match predecoded {
            Some((_, meta)) if !meta.fold_cand => None,
            _ => self.hooks.try_fold(pc, word),
        };
        let mut slot;
        if let Some(folded) = folded {
            // The branch is folded out: its replacement enters the pipe in
            // its place and fetch continues past it with certainty.
            self.stats.folded_branches += 1;
            self.stats.attribution.note_fold(pc);
            if let Some(t) = self.tracer.as_mut() {
                t.on_fold(self.stats.cycles, pc, folded.taken);
            }
            let meta = self.code.meta_for(
                folded.replacement_pc,
                folded.replacement,
                self.cfg.mul_latency,
                self.cfg.div_latency,
            );
            slot = Slot::new(folded.replacement_pc, folded.replacement, meta);
            slot.assumed_next = folded.next_pc;
            if slot.meta.is_branch {
                // A replacement that is itself a branch proceeds as a
                // not-taken-assumed branch (fetch continues fall-through).
                slot.predicted_taken = Some(false);
            }
        } else {
            let (instr, meta) = match predecoded {
                Some(hit) => hit,
                None => {
                    let instr = Instr::decode(word)
                        .map_err(|_| SimError::InvalidInstr { pc, word })?;
                    (
                        instr,
                        SlotMeta::from_instr(instr, pc, self.cfg.mul_latency, self.cfg.div_latency),
                    )
                }
            };
            slot = Slot::new(pc, instr, meta);
            if slot.meta.is_branch {
                self.stats.activity.predictor_lookups += 1;
                let predicted = self.pred.predict(pc);
                slot.predicted_taken = Some(predicted);
                if predicted {
                    // Redirect requires a cached target.
                    if let Some(target) = self.btb.as_mut().and_then(|b| b.lookup(pc)) {
                        slot.assumed_next = target;
                    }
                }
            }
        }
        // Optional return-address stack: calls push, `jr ra` pops a
        // predicted return target (speculative pushes/pops are not
        // repaired on a flush, as in simple hardware).
        if let Some(ras) = &mut self.ras {
            match slot.meta.ras {
                RasClass::Push => {
                    ras.push(slot.pc.wrapping_add(INSTR_BYTES));
                }
                RasClass::PopReturn => {
                    if let Some(target) = ras.pop() {
                        slot.assumed_next = target;
                    }
                }
                RasClass::None => {}
            }
        }

        self.stats.activity.fetched += 1;
        if let Some(dst) = slot.meta.dst {
            self.hooks.note_fetch_writer(dst);
            slot.writer_pending = Some(dst);
        }
        if slot.meta.is_halt {
            self.halt_fetched = true;
        }
        self.pc = slot.assumed_next;

        if penalty > 0 {
            // The word is not ready this cycle; decode sees a bubble
            // charged to the missing fetch.
            self.gap_if_id = (CycleBucket::IcacheStall, pc);
            self.fetching = Some((slot, penalty));
        } else {
            self.if_id = Some(slot);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Squash helpers
    // ------------------------------------------------------------------

    fn squash_slot(&mut self, slot: Slot) {
        self.stats.activity.squashed += 1;
        if let Some(r) = slot.writer_pending {
            self.hooks.note_squash_writer(r);
        }
    }

    fn squash_fetch_in_flight(&mut self) {
        if let Some((slot, _)) = self.fetching.take() {
            self.squash_slot(slot);
        }
    }

    fn squash_if_id_and_fetch(&mut self) {
        if let Some(slot) = self.if_id.take() {
            self.squash_slot(slot);
        }
        self.squash_fetch_in_flight();
    }
}

impl<H: SimHooks + core::fmt::Debug> core::fmt::Debug for Pipeline<H> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Pipeline")
            .field("pc", &self.pc)
            .field("cycles", &self.stats.cycles)
            .field("retired", &self.stats.retired)
            .field("halted", &self.halted)
            .field("hooks", &self.hooks)
            .finish_non_exhaustive()
    }
}

// PartialEq for test ergonomics on run() results.
impl PartialEq for PipelineSummary {
    fn eq(&self, other: &Self) -> bool {
        self.output == other.output && self.halted == other.halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asbr_asm::assemble;
    use asbr_bpred::PredictorKind;
    use asbr_sim_test_util::*;

    /// Local helpers for pipeline tests.
    mod asbr_sim_test_util {
        use super::*;

        pub fn run_pipe(src: &str, kind: PredictorKind) -> (Pipeline<NullHooks>, PipelineSummary) {
            let prog = assemble(src).expect("test program assembles");
            let mut pipe = Pipeline::new(
                PipelineConfig { max_cycles: 10_000_000, ..PipelineConfig::default() },
                kind.build(),
            );
            let summary = pipe.execute(&prog, []).expect("test program halts");
            (pipe, summary)
        }

        pub fn run_functional(src: &str) -> crate::interp::RunSummary {
            let prog = assemble(src).expect("assembles");
            let mut it = crate::Interp::new(&prog).expect("valid text");
            it.run(10_000_000).expect("halts")
        }
    }

    const COUNTDOWN: &str = "
        main:   li r4, 50
                li r2, 0
        loop:   addi r2, r2, 3
                addi r4, r4, -1
                bnez r4, loop
                halt
    ";

    #[test]
    fn results_match_functional_interpreter() {
        let (pipe, _) = run_pipe(COUNTDOWN, PredictorKind::NotTaken);
        assert_eq!(pipe.reg(Reg::V0), 150);
    }

    #[test]
    fn retired_count_matches_functional() {
        let f = run_functional(COUNTDOWN);
        let (_, s) = run_pipe(COUNTDOWN, PredictorKind::NotTaken);
        assert_eq!(s.stats.retired, f.instructions);
    }

    #[test]
    fn cpi_at_least_one() {
        let (_, s) = run_pipe(COUNTDOWN, PredictorKind::Bimodal { entries: 64 });
        assert!(s.stats.cpi() >= 1.0, "cpi {}", s.stats.cpi());
    }

    #[test]
    fn better_predictor_fewer_cycles() {
        // The loop branch is taken 49 times out of 50: bimodal learns it,
        // not-taken mispredicts every taken iteration.
        let (_, nt) = run_pipe(COUNTDOWN, PredictorKind::NotTaken);
        let (_, bi) = run_pipe(COUNTDOWN, PredictorKind::Bimodal { entries: 64 });
        assert!(
            bi.stats.cycles < nt.stats.cycles,
            "bimodal {} vs not-taken {}",
            bi.stats.cycles,
            nt.stats.cycles
        );
        assert!(bi.stats.accuracy() > nt.stats.accuracy());
    }

    #[test]
    fn mispredict_costs_two_cycles() {
        // One never-taken branch, predicted not-taken: zero flushes.
        let straight = "
            main:   li r4, 0
                    bnez r4, off
                    li r2, 1
                    halt
            off:    li r2, 2
                    halt
        ";
        let (_, s) = run_pipe(straight, PredictorKind::NotTaken);
        assert_eq!(s.stats.branch_flushes, 0);

        // One always-taken branch under not-taken prediction: exactly one
        // flush; compare cycles against the same code without the flush.
        let taken = "
            main:   li r4, 1
                    bnez r4, over
                    nop
            over:   li r2, 2
                    halt
        ";
        let (_, t) = run_pipe(taken, PredictorKind::NotTaken);
        assert_eq!(t.stats.branch_flushes, 1);
        // The flush costs exactly two slots, and the attribution charges
        // exactly those two cycles to the branch-flush bucket (and to the
        // mispredicting branch's site).
        assert_eq!(t.stats.retired, 4);
        let a = &t.stats.attribution;
        assert_eq!(a.get(CycleBucket::BranchFlush), 2);
        assert_eq!(a.site_flush_cycles(), 2);
        let (&pc, site) = a.sites().iter().next().unwrap();
        assert_eq!(site.flushes, 1);
        assert_eq!(site.flush_cycles, 2);
        assert_eq!(pc, 0x1004, "the bnez is the second instruction");
        // The old ad-hoc identity, now derived from disjoint buckets.
        assert_eq!(t.stats.cycles, 4 + 4 + 2 + i_cache_cold_cycles(&t));
    }

    /// Cold-start I-cache penalties for tiny programs (all fetches in one
    /// or two lines).
    fn i_cache_cold_cycles(s: &PipelineSummary) -> u64 {
        s.stats.icache_stall_cycles
    }

    #[test]
    fn direct_jump_costs_one_bubble() {
        let jumpy = "
            main:   j next
                    nop
            next:   li r2, 1
                    halt
        ";
        let (_, s) = run_pipe(jumpy, PredictorKind::NotTaken);
        assert_eq!(s.stats.jump_redirects, 1);
        assert_eq!(s.stats.retired, 3);
        assert_eq!(s.stats.cycles, 3 + 4 + 1 + i_cache_cold_cycles(&s));
    }

    #[test]
    fn load_use_stalls_once() {
        let prog = "
            main:   la  r5, v
                    lw  r2, 0(r5)
                    addi r2, r2, 1
                    halt
            .data
            v:      .word 41
        ";
        let (pipe, s) = run_pipe(prog, PredictorKind::NotTaken);
        assert_eq!(pipe.reg(Reg::V0), 42);
        assert_eq!(s.stats.load_use_stalls, 1);
    }

    #[test]
    fn no_stall_with_one_instruction_gap() {
        let prog = "
            main:   la  r5, v
                    lw  r2, 0(r5)
                    nop
                    addi r2, r2, 1
                    halt
            .data
            v:      .word 41
        ";
        let (pipe, s) = run_pipe(prog, PredictorKind::NotTaken);
        assert_eq!(pipe.reg(Reg::V0), 42);
        assert_eq!(s.stats.load_use_stalls, 0);
    }

    #[test]
    fn forwarding_back_to_back_alu() {
        let prog = "
            main:   li  r2, 1
                    addi r2, r2, 1
                    addi r2, r2, 1
                    addi r2, r2, 1
                    halt
        ";
        let (pipe, s) = run_pipe(prog, PredictorKind::NotTaken);
        assert_eq!(pipe.reg(Reg::V0), 4);
        assert_eq!(s.stats.load_use_stalls, 0);
        // No hazards: every cycle is useful, fill/drain, or cold-icache.
        let a = &s.stats.attribution;
        assert_eq!(a.get(CycleBucket::Useful), s.stats.retired);
        assert_eq!(a.get(CycleBucket::FillDrain), 4);
        assert_eq!(a.get(CycleBucket::IcacheStall), s.stats.icache_stall_cycles);
        assert_eq!(a.get(CycleBucket::LoadUse), 0);
        assert_eq!(a.get(CycleBucket::BranchFlush), 0);
        assert_eq!(a.total(), s.stats.cycles);
    }

    #[test]
    fn btb_enables_zero_penalty_taken_branches() {
        // A hot loop: once bimodal + BTB warm up, the back edge costs
        // nothing. Compare against a BTB-less config where every taken
        // prediction still fetches fall-through and flushes.
        let (_, with_btb) = run_pipe(COUNTDOWN, PredictorKind::Bimodal { entries: 64 });
        let prog = assemble(COUNTDOWN).unwrap();
        let mut no_btb = Pipeline::new(
            PipelineConfig { btb_entries: 0, ..PipelineConfig::default() },
            PredictorKind::Bimodal { entries: 64 }.build(),
        );
        no_btb.load(&prog).unwrap();
        let nb = no_btb.run().unwrap();
        assert!(with_btb.stats.cycles < nb.stats.cycles);
        // Direction accuracy is identical; only the redirect differs.
        assert!((with_btb.stats.accuracy() - nb.stats.accuracy()).abs() < 1e-9);
    }

    #[test]
    fn dcache_misses_stall() {
        // Stride through 64 distinct lines twice: first pass misses.
        let prog = "
            main:   la  r5, buf
                    li  r4, 64
            loop:   lw  r2, 0(r5)
                    addi r5, r5, 32
                    addi r4, r4, -1
                    bnez r4, loop
                    halt
            .data
            buf:    .space 2048
        ";
        let (pipe, s) = run_pipe(prog, PredictorKind::Bimodal { entries: 64 });
        assert!(s.stats.dcache_stall_cycles >= 64 * 8, "{}", s.stats.dcache_stall_cycles);
        assert!(pipe.mem().dcache_stats().misses() >= 64);
    }

    #[test]
    fn mmio_round_trip_matches_functional() {
        let prog_src = "
            main:   li   r8, 0xFFFF0000
            loop:   lw   r9, 4(r8)
                    beqz r9, done
                    lw   r10, 0(r8)
                    addi r10, r10, 100
                    sw   r10, 8(r8)
                    j    loop
            done:   halt
        ";
        let prog = assemble(prog_src).unwrap();
        let input = [5, -7, 0, 123];

        let mut it = crate::Interp::new(&prog).unwrap();
        it.feed_input(input);
        let f = it.run(1_000_000).unwrap();

        let mut pipe =
            Pipeline::new(PipelineConfig::default(), PredictorKind::NotTaken.build());
        pipe.load(&prog).unwrap();
        pipe.feed_input(input);
        let p = pipe.run().unwrap();

        assert_eq!(f.output, p.output);
        assert_eq!(f.output, vec![105, 93, 100, 223]);
    }

    #[test]
    fn function_calls_work_under_pipelining() {
        let prog = "
            main:   li   r4, 20
                    jal  double
                    move r16, r2
                    li   r4, 11
                    jal  double
                    add  r16, r16, r2
                    halt
            double: add  r2, r4, r4
                    jr   r31
        ";
        let (pipe, s) = run_pipe(prog, PredictorKind::NotTaken);
        assert_eq!(pipe.reg(Reg::new(16)), 62);
        assert_eq!(s.stats.jump_redirects, 2); // two jals
        assert_eq!(s.stats.indirect_flushes, 2); // two jr returns
    }

    #[test]
    fn cycle_limit_errors() {
        let prog = assemble("main: j main").unwrap();
        let mut pipe = Pipeline::new(
            PipelineConfig { max_cycles: 200, ..PipelineConfig::default() },
            PredictorKind::NotTaken.build(),
        );
        pipe.load(&prog).unwrap();
        assert_eq!(pipe.run(), Err(SimError::Limit { limit: 200 }));
    }

    #[test]
    fn accuracy_tracker_counts_every_dynamic_branch() {
        let (_, s) = run_pipe(COUNTDOWN, PredictorKind::NotTaken);
        assert_eq!(s.stats.branches.total().executed, 50);
        assert_eq!(s.stats.branches.total().taken, 49);
    }

    #[test]
    fn halt_stops_fetch_but_commits_exactly_once() {
        let (_, s) = run_pipe("main: halt", PredictorKind::NotTaken);
        assert_eq!(s.stats.retired, 1);
        assert!(s.halted);
    }

    #[test]
    fn snapshot_traces_an_instruction_through_the_stages() {
        let prog = assemble("main: li r2, 1\nli r3, 2\nli r4, 3\nli r5, 4\nli r6, 5\nhalt").unwrap();
        let mut pipe = Pipeline::new(PipelineConfig::default(), PredictorKind::NotTaken.build());
        pipe.load(&prog).unwrap();
        let first_pc = prog.text_base();
        let mut seen_stages = Vec::new();
        for _ in 0..40 {
            if pipe.halted() {
                break;
            }
            pipe.cycle().unwrap();
            let snap = pipe.snapshot();
            for (name, occ) in [
                ("IF", snap.fetch.map(|(s, _)| s)),
                ("ID", snap.decode),
                ("EX", snap.execute.map(|(s, _)| s)),
                ("MEM", snap.memory.map(|(s, _)| s)),
                ("WB", snap.writeback),
            ] {
                if occ.is_some_and(|s| s.pc == first_pc) {
                    seen_stages.push(name);
                }
            }
        }
        // The first instruction visits the latches in order (IF only
        // appears on a miss; with a cold I-cache it does).
        assert!(seen_stages.ends_with(&["ID", "EX", "MEM", "WB"]), "{seen_stages:?}");
        let rendered = pipe.snapshot().to_string();
        assert!(rendered.contains("IF["));
        assert!(rendered.contains("WB["));
    }

    #[test]
    fn multi_cycle_multiply_stalls_ex() {
        let src = "
            main:   li  r2, 7
                    li  r3, 6
                    mul r4, r2, r3
                    mul r5, r4, r2
                    addi r6, r5, 1
                    halt
        ";
        let prog = assemble(src).unwrap();
        let run_with = |mul_latency: u32| {
            let mut pipe = Pipeline::new(
                PipelineConfig { mul_latency, ..PipelineConfig::default() },
                PredictorKind::NotTaken.build(),
            );
            pipe.load(&prog).unwrap();
            let s = pipe.run().unwrap();
            (s.stats.cycles, s.stats.ex_stall_cycles, pipe.reg(Reg::new(6)))
        };
        let (c1, s1, v1) = run_with(1);
        let (c4, s4, v4) = run_with(4);
        assert_eq!(v1, 7 * 6 * 7 + 1);
        assert_eq!(v4, v1, "latency never changes results");
        assert_eq!(s1, 0);
        assert_eq!(s4, 2 * 3, "two muls x 3 extra EX cycles each");
        assert_eq!(c4, c1 + 6, "stalls add exactly the extra occupancy");
    }

    #[test]
    fn multi_cycle_divide_correct_under_dependencies() {
        let src = "
            main:   li  r2, 100
                    li  r3, 7
                    div r4, r2, r3
                    rem r5, r2, r3
                    add r6, r4, r5
                    halt
        ";
        let prog = assemble(src).unwrap();
        let mut pipe = Pipeline::new(
            PipelineConfig { div_latency: 12, ..PipelineConfig::default() },
            PredictorKind::NotTaken.build(),
        );
        pipe.load(&prog).unwrap();
        let s = pipe.run().unwrap();
        assert_eq!(pipe.reg(Reg::new(6)), 14 + 2);
        assert_eq!(s.stats.ex_stall_cycles, 2 * 11);
    }

    #[test]
    fn return_stack_removes_return_flushes() {
        let src = "
            main:   li   r16, 40
            loop:   jal  f
                    addi r16, r16, -1
                    bnez r16, loop
                    halt
            f:      add  r2, r16, r16
                    jr   r31
        ";
        let prog = assemble(src).unwrap();
        let run_with = |ras_entries: usize| {
            let mut pipe = Pipeline::new(
                PipelineConfig { ras_entries, ..PipelineConfig::default() },
                PredictorKind::Bimodal { entries: 64 }.build(),
            );
            pipe.load(&prog).unwrap();
            let s = pipe.run().unwrap();
            (s.stats.cycles, s.stats.indirect_flushes, pipe.reg(Reg::V0))
        };
        let (c_off, flush_off, v_off) = run_with(0);
        let (c_on, flush_on, v_on) = run_with(8);
        assert_eq!(v_on, v_off, "RAS never changes results");
        assert_eq!(flush_off, 40, "every return flushes without a RAS");
        assert!(flush_on <= 1, "RAS predicts returns: {flush_on}");
        assert!(c_on < c_off, "{c_on} !< {c_off}");
    }

    #[test]
    fn activity_accounting_balances() {
        let (_, s) = run_pipe(COUNTDOWN, PredictorKind::NotTaken);
        let a = s.stats.activity;
        // Every fetched slot either retires or is squashed.
        assert_eq!(a.fetched, s.stats.retired + a.squashed);
        // Wrong-path slots never reach EX in a 5-stage pipe resolving
        // branches in EX.
        assert_eq!(a.executed, s.stats.retired);
        assert!(a.decoded >= s.stats.retired);
        // Every dynamic branch looked up and updated the predictor once.
        assert_eq!(a.predictor_updates, s.stats.branches.total().executed);
        assert!(a.predictor_lookups >= a.predictor_updates);
        // The countdown writes r2/r4 every iteration.
        assert!(a.reg_writes >= 100);
        assert_eq!(a.mem_ops, 0, "countdown touches no memory");
    }

    #[test]
    fn attribution_partitions_every_cycle() {
        let memory_heavy = "
            main:   la  r5, buf
                    li  r4, 16
            loop:   lw  r2, 0(r5)
                    addi r2, r2, 1
                    addi r5, r5, 32
                    addi r4, r4, -1
                    bnez r4, loop
                    halt
            .data
            buf:    .space 1024
        ";
        for (src, kind) in [
            (COUNTDOWN, PredictorKind::NotTaken),
            (COUNTDOWN, PredictorKind::Bimodal { entries: 64 }),
            (memory_heavy, PredictorKind::NotTaken),
            (memory_heavy, PredictorKind::Bimodal { entries: 64 }),
        ] {
            let (_, s) = run_pipe(src, kind);
            let a = &s.stats.attribution;
            // The buckets partition cycles exactly — this is the identity
            // the scalar event counters cannot provide.
            assert_eq!(a.total(), s.stats.cycles, "buckets must sum to cycles");
            assert_eq!(a.get(CycleBucket::Useful), s.stats.retired);
            // Branch-flush cycles reconcile with the per-site records and
            // with the AccuracyTracker's mispredict count.
            assert_eq!(a.site_flush_cycles(), a.get(CycleBucket::BranchFlush));
            // Flush events reconcile exactly with the per-site records
            // (note: flushes can exceed direction mispredicts — a
            // correctly-predicted taken branch still flushes on a BTB
            // miss, so the AccuracyTracker is not the comparison point).
            let site_flushes: u64 = a.sites().values().map(|b| b.flushes).sum();
            assert_eq!(site_flushes, s.stats.branch_flushes);
        }
    }

    #[test]
    fn flush_overlapping_refill_is_not_double_counted() {
        // The taken bnez sits at the end of a 32-byte I-cache line with a
        // 4-cycle multiply ahead of it in EX, so the doomed fall-through
        // fetch (0x1020, a cold line) is still refilling when the flush
        // lands. The refill cycles accrue in `icache_stall_cycles` but
        // those same machine cycles are EX-occupancy bubbles: the naive
        // event-sum identity double-counts them, the attribution does not.
        let src = "
            main:   li  r4, 1
                    nop
                    nop
                    nop
                    nop
                    nop
                    mul r5, r4, r4
            br:     bnez r4, over
                    nop
            over:   li  r2, 2
                    halt
        ";
        let prog = assemble(src).expect("assembles");
        let mut pipe = Pipeline::new(
            PipelineConfig { mul_latency: 4, ..PipelineConfig::default() },
            PredictorKind::NotTaken.build(),
        );
        let s = pipe.execute(&prog, []).expect("halts");
        assert_eq!(s.stats.branch_flushes, 1);
        let a = &s.stats.attribution;
        assert_eq!(a.total(), s.stats.cycles);
        assert_eq!(a.get(CycleBucket::BranchFlush), 2);
        assert!(a.get(CycleBucket::ExOccupancy) > 0);
        // The squashed wrong-path refill accrued icache stall *events*
        // without costing distinct machine cycles.
        assert!(
            a.get(CycleBucket::IcacheStall) < s.stats.icache_stall_cycles,
            "attributed {} vs event counter {}",
            a.get(CycleBucket::IcacheStall),
            s.stats.icache_stall_cycles
        );
        let naive = s.stats.retired
            + 4
            + 2 * s.stats.branch_flushes
            + s.stats.icache_stall_cycles
            + s.stats.ex_stall_cycles;
        assert!(naive > s.stats.cycles, "naive identity {naive} vs true {}", s.stats.cycles);
    }

    #[test]
    fn folded_branches_reduce_pipeline_traffic() {
        use crate::hooks::{Folded, PublishPoint, SimHooks};
        use asbr_isa::Cond;

        /// A minimal always-fold unit for the countdown's back edge,
        /// tracking the register like a 1-entry BDT.
        #[derive(Debug, Default)]
        struct TinyFold {
            branch_pc: u32,
            target: u32,
            taken_instr: Instr,
            fall_instr: Instr,
            in_flight: u32,
            value: i32,
        }
        impl SimHooks for TinyFold {
            fn publish_point(&self) -> PublishPoint {
                PublishPoint::Mem
            }
            fn try_fold(&mut self, pc: u32, _word: u32) -> Option<Folded> {
                if pc != self.branch_pc || self.in_flight != 0 {
                    return None;
                }
                if Cond::Ne.eval(self.value) {
                    Some(Folded {
                        replacement: self.taken_instr,
                        replacement_pc: self.target,
                        next_pc: self.target + 4,
                        taken: true,
                    })
                } else {
                    Some(Folded {
                        replacement: self.fall_instr,
                        replacement_pc: pc + 4,
                        next_pc: pc + 8,
                        taken: false,
                    })
                }
            }
            fn note_fetch_writer(&mut self, reg: Reg) {
                if reg == Reg::new(4) {
                    self.in_flight += 1;
                }
            }
            fn note_squash_writer(&mut self, reg: Reg) {
                if reg == Reg::new(4) {
                    self.in_flight -= 1;
                }
            }
            fn note_publish(&mut self, reg: Reg, value: u32) {
                if reg == Reg::new(4) {
                    self.in_flight -= 1;
                    self.value = value as i32;
                }
            }
            fn note_ctrl_write(&mut self, _c: u8, _v: u32) {}
        }

        let src = "
            main:   li   r4, 50
                    li   r2, 0
            loop:   addi r4, r4, -1
                    addi r2, r2, 3
                    nop
                    nop
            br:     bnez r4, loop
                    halt
        ";
        let prog = assemble(src).unwrap();
        let br = prog.symbol("br").unwrap();
        let loop_pc = prog.symbol("loop").unwrap();
        let hooks = TinyFold {
            branch_pc: br,
            target: loop_pc,
            taken_instr: prog.instr_at(loop_pc).unwrap(),
            fall_instr: Instr::Halt,
            ..TinyFold::default()
        };
        let mut folded = Pipeline::with_hooks(
            PipelineConfig::default(),
            PredictorKind::NotTaken.build(),
            hooks,
        );
        folded.load(&prog).unwrap();
        let f = folded.run().unwrap();

        let (_, base) = run_pipe(src, PredictorKind::NotTaken);

        // Folding removes the branch from every pipeline stage *and*
        // removes the wrong-path fetches its mispredictions caused.
        assert!(f.stats.folded_branches >= 45, "{}", f.stats.folded_branches);
        let fa = f.stats.activity;
        let ba = base.stats.activity;
        assert!(fa.fetched < ba.fetched);
        assert!(fa.executed < ba.executed);
        assert!(fa.squashed < ba.squashed);
        assert_eq!(fa.predictor_lookups, 0, "folded branches never touch the predictor");
        assert_eq!(f.stats.retired + f.stats.folded_branches, base.stats.retired);
        // Per-site fold attribution reconciles with the aggregate count.
        assert_eq!(f.stats.attribution.site_folds(), f.stats.folded_branches);
        assert_eq!(f.stats.attribution.site(br).unwrap().folds, f.stats.folded_branches);
        assert_eq!(folded.reg(Reg::V0), 150, "results unchanged");
    }
}
