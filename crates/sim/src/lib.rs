#![warn(missing_docs)]

//! Processor simulators for the ASBR reproduction.
//!
//! Two engines share one instruction-semantics core ([`exec`]):
//!
//! * [`Interp`] — a fast *functional* interpreter used for profiling
//!   (branch statistics, def→use distances) and for validating guest
//!   programs against reference codecs;
//! * [`Pipeline`] — the *cycle-accurate* model of the paper's evaluation
//!   platform (Sec. 8): a 5-stage (IF/ID/EX/MEM/WB) in-order single-issue
//!   pipeline with full forwarding, a one-cycle load-use interlock, branch
//!   resolution in EX (two squashed slots on a wrong-path fetch), direct
//!   jumps redirecting in ID (one squashed slot), and 8 KB I/D caches.
//!
//! Both engines *decode once*: [`Pipeline::load`] and [`Interp::new`]
//! validate and pre-decode the whole text segment up front (undecodable
//! words are a load-time [`SimError::InvalidText`] listing every bad
//! word), and the per-cycle fetch is an array lookup instead of a memory
//! read plus decode. I-cache timing is still modelled on the word stream,
//! so simulated cycle counts are unchanged.
//!
//! Both engines are observed and customized through the single
//! [`SimHooks`] trait: the `asbr-core` crate implements the paper's
//! Application-Specific Branch Resolution through its fetch-customization
//! methods (folding branches out of the instruction stream at fetch,
//! tracking in-flight predicate writers, receiving early register
//! publishes at a configurable pipeline point), profilers consume the
//! interpreter's retire stream, and trace sinks consume the pipeline's
//! per-cycle attribution events.
//!
//! The [`timing`] module publishes the pipeline's per-instruction EX
//! latencies and flush/interlock geometry as plain data, so static
//! analyzers (the `asbr-check` cycle-bound analyzer) can reason about
//! cycles without instantiating a simulator.
//!
//! # Examples
//!
//! ```
//! use asbr_asm::assemble;
//! use asbr_bpred::PredictorKind;
//! use asbr_sim::{Pipeline, PipelineConfig};
//!
//! let prog = assemble("
//! main:   li   r4, 10
//! loop:   addi r4, r4, -1
//!         bnez r4, loop
//!         halt
//! ")?;
//! let mut pipe = Pipeline::new(
//!     PipelineConfig::default(),
//!     PredictorKind::Bimodal { entries: 64 }.build(),
//! );
//! pipe.load(&prog)?;
//! let summary = pipe.run()?;
//! assert!(summary.halted);
//! assert!(summary.stats.cycles > summary.stats.retired); // CPI > 1
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod exec;
mod batch;
mod checkpoint;
mod code;
mod error;
mod hooks;
mod interp;
mod pipeline;
mod snapshot;
mod stats;
pub mod timing;
mod trace;

pub use batch::BatchPipeline;
pub use checkpoint::Checkpoint;
pub use error::SimError;
pub use hooks::{Folded, NullHooks, PublishPoint, SimHooks};
pub use interp::{Interp, RunSummary, DEFAULT_MAX_STEPS};
pub use pipeline::{Pipeline, PipelineConfig, PipelineSummary};
pub use snapshot::{PipeSnapshot, StageView};
pub use stats::{Activity, BranchSite, CycleAttribution, CycleBucket, PipelineStats, NUM_BUCKETS};
pub use trace::{ChromeTracer, DEFAULT_INTERVAL as DEFAULT_TRACE_INTERVAL};
