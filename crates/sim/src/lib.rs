#![warn(missing_docs)]

//! Processor simulators for the ASBR reproduction.
//!
//! Two engines share one instruction-semantics core ([`exec`]):
//!
//! * [`Interp`] — a fast *functional* interpreter used for profiling
//!   (branch statistics, def→use distances) and for validating guest
//!   programs against reference codecs;
//! * [`Pipeline`] — the *cycle-accurate* model of the paper's evaluation
//!   platform (Sec. 8): a 5-stage (IF/ID/EX/MEM/WB) in-order single-issue
//!   pipeline with full forwarding, a one-cycle load-use interlock, branch
//!   resolution in EX (two squashed slots on a wrong-path fetch), direct
//!   jumps redirecting in ID (one squashed slot), and 8 KB I/D caches.
//!
//! The pipeline exposes the [`FetchHooks`] trait: a fetch-stage
//! customization point through which the `asbr-core` crate implements the
//! paper's Application-Specific Branch Resolution — folding branches out of
//! the instruction stream at fetch, tracking in-flight predicate writers,
//! and receiving early register publishes at a configurable pipeline point.
//!
//! # Examples
//!
//! ```
//! use asbr_asm::assemble;
//! use asbr_bpred::PredictorKind;
//! use asbr_sim::{Pipeline, PipelineConfig};
//!
//! let prog = assemble("
//! main:   li   r4, 10
//! loop:   addi r4, r4, -1
//!         bnez r4, loop
//!         halt
//! ")?;
//! let mut pipe = Pipeline::new(
//!     PipelineConfig::default(),
//!     PredictorKind::Bimodal { entries: 64 }.build(),
//! );
//! pipe.load(&prog);
//! let summary = pipe.run()?;
//! assert!(summary.halted);
//! assert!(summary.stats.cycles > summary.stats.retired); // CPI > 1
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod exec;
mod error;
mod hooks;
mod interp;
mod pipeline;
mod snapshot;
mod stats;
mod trace;

pub use error::SimError;
pub use hooks::{FetchHooks, Folded, NullHooks, PublishPoint, TraceHooks};
pub use interp::{Interp, Observer, RunSummary};
pub use pipeline::{Pipeline, PipelineConfig, PipelineSummary};
pub use snapshot::{PipeSnapshot, StageView};
pub use stats::{Activity, BranchSite, CycleAttribution, CycleBucket, PipelineStats, NUM_BUCKETS};
pub use trace::{ChromeTracer, DEFAULT_INTERVAL as DEFAULT_TRACE_INTERVAL};
