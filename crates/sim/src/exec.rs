//! Shared instruction semantics.
//!
//! Both simulators evaluate instructions through [`execute`], so the
//! functional interpreter and the pipelined model cannot drift apart: the
//! pipeline's EX stage and the interpreter's step call the same function
//! with different register-read closures (the pipeline's closure applies
//! operand forwarding).

use asbr_isa::{Instr, MemWidth, Reg, INSTR_BYTES};

/// A pending memory operation produced by the execute phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Effective address.
    pub addr: u32,
    /// Access width in bytes (1, 2 or 4).
    pub bytes: u32,
    /// `Some(value)` for stores; `None` for loads.
    pub store: Option<u32>,
    /// Zero-extend (rather than sign-extend) a narrow load.
    pub unsigned: bool,
}

/// A resolved change of control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlEffect {
    /// A conditional branch with its outcome and (taken-)target.
    Branch {
        /// Whether the branch is taken.
        taken: bool,
        /// Target if taken.
        target: u32,
    },
    /// An unconditional jump (direct or indirect) to `target`.
    Jump {
        /// Jump destination.
        target: u32,
    },
}

impl ControlEffect {
    /// The address of the next instruction given this effect, for an
    /// instruction at `pc`.
    #[must_use]
    pub fn next_pc(&self, pc: u32) -> u32 {
        match *self {
            ControlEffect::Branch { taken: true, target } => target,
            ControlEffect::Branch { taken: false, .. } => pc.wrapping_add(INSTR_BYTES),
            ControlEffect::Jump { target } => target,
        }
    }
}

/// Everything the execute phase decides about one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecEffect {
    /// Register result available at the end of EX (`None` for loads, whose
    /// result exists only after MEM, and for non-writing instructions).
    pub writeback: Option<(Reg, u32)>,
    /// Memory operation to perform in MEM. For loads, `dst` below receives
    /// the extended value.
    pub mem: Option<MemOp>,
    /// Load destination register (paired with a `mem` load).
    pub load_dst: Option<Reg>,
    /// Control-flow resolution.
    pub control: Option<ControlEffect>,
    /// Control-register write (`ctrlw`): `(index, value)`.
    pub ctrl_write: Option<(u8, u32)>,
    /// The machine halts when this instruction commits.
    pub halt: bool,
}

/// Sign- or zero-extends a raw loaded value.
#[must_use]
pub fn extend_load(raw: u32, width: MemWidth, unsigned: bool) -> u32 {
    match (width, unsigned) {
        (MemWidth::Byte, false) => (raw as u8) as i8 as i32 as u32,
        (MemWidth::Byte, true) => u32::from(raw as u8),
        (MemWidth::Half, false) => (raw as u16) as i16 as i32 as u32,
        (MemWidth::Half, true) => u32::from(raw as u16),
        (MemWidth::Word, _) => raw,
    }
}

/// Evaluates `instr` at `pc`, reading source registers through `read`.
///
/// Pure with respect to machine state: all effects are returned in the
/// [`ExecEffect`] for the caller to apply with its own timing.
pub fn execute(instr: Instr, pc: u32, mut read: impl FnMut(Reg) -> u32) -> ExecEffect {
    let mut fx = ExecEffect::default();
    let link = pc.wrapping_add(INSTR_BYTES);

    /// Signed view helper.
    fn s(v: u32) -> i32 {
        v as i32
    }

    match instr {
        Instr::Add { rd, rs, rt } => {
            fx.writeback = Some((rd, read(rs).wrapping_add(read(rt))));
        }
        Instr::Sub { rd, rs, rt } => {
            fx.writeback = Some((rd, read(rs).wrapping_sub(read(rt))));
        }
        Instr::And { rd, rs, rt } => fx.writeback = Some((rd, read(rs) & read(rt))),
        Instr::Or { rd, rs, rt } => fx.writeback = Some((rd, read(rs) | read(rt))),
        Instr::Xor { rd, rs, rt } => fx.writeback = Some((rd, read(rs) ^ read(rt))),
        Instr::Nor { rd, rs, rt } => fx.writeback = Some((rd, !(read(rs) | read(rt)))),
        Instr::Slt { rd, rs, rt } => {
            fx.writeback = Some((rd, u32::from(s(read(rs)) < s(read(rt)))));
        }
        Instr::Sltu { rd, rs, rt } => fx.writeback = Some((rd, u32::from(read(rs) < read(rt)))),
        Instr::Mul { rd, rs, rt } => {
            fx.writeback = Some((rd, s(read(rs)).wrapping_mul(s(read(rt))) as u32));
        }
        Instr::Div { rd, rs, rt } => {
            let (a, b) = (s(read(rs)), s(read(rt)));
            fx.writeback = Some((rd, if b == 0 { 0 } else { a.wrapping_div(b) as u32 }));
        }
        Instr::Rem { rd, rs, rt } => {
            let (a, b) = (s(read(rs)), s(read(rt)));
            fx.writeback = Some((rd, if b == 0 { 0 } else { a.wrapping_rem(b) as u32 }));
        }
        Instr::Sll { rd, rt, shamt } => fx.writeback = Some((rd, read(rt) << shamt)),
        Instr::Srl { rd, rt, shamt } => fx.writeback = Some((rd, read(rt) >> shamt)),
        Instr::Sra { rd, rt, shamt } => fx.writeback = Some((rd, (s(read(rt)) >> shamt) as u32)),
        Instr::Sllv { rd, rt, rs } => {
            fx.writeback = Some((rd, read(rt) << (read(rs) & 31)));
        }
        Instr::Srlv { rd, rt, rs } => {
            fx.writeback = Some((rd, read(rt) >> (read(rs) & 31)));
        }
        Instr::Srav { rd, rt, rs } => {
            fx.writeback = Some((rd, (s(read(rt)) >> (read(rs) & 31)) as u32));
        }
        Instr::Addi { rt, rs, imm } => {
            fx.writeback = Some((rt, read(rs).wrapping_add(imm as i32 as u32)));
        }
        Instr::Slti { rt, rs, imm } => {
            fx.writeback = Some((rt, u32::from(s(read(rs)) < i32::from(imm))));
        }
        Instr::Sltiu { rt, rs, imm } => {
            fx.writeback = Some((rt, u32::from(read(rs) < imm as i32 as u32)));
        }
        Instr::Andi { rt, rs, imm } => fx.writeback = Some((rt, read(rs) & u32::from(imm))),
        Instr::Ori { rt, rs, imm } => fx.writeback = Some((rt, read(rs) | u32::from(imm))),
        Instr::Xori { rt, rs, imm } => fx.writeback = Some((rt, read(rs) ^ u32::from(imm))),
        Instr::Lui { rt, imm } => fx.writeback = Some((rt, u32::from(imm) << 16)),
        Instr::Load { rt, rs, off, width, unsigned } => {
            fx.mem = Some(MemOp {
                addr: read(rs).wrapping_add(off as i32 as u32),
                bytes: width.bytes(),
                store: None,
                unsigned,
            });
            fx.load_dst = Some(rt);
        }
        Instr::Store { rt, rs, off, width } => {
            fx.mem = Some(MemOp {
                addr: read(rs).wrapping_add(off as i32 as u32),
                bytes: width.bytes(),
                store: Some(read(rt)),
                unsigned: false,
            });
        }
        Instr::BranchZ { cond, rs, off } => {
            let taken = cond.eval(s(read(rs)));
            let target = asbr_isa::BranchInfo { zero_compare: None, off }.target(pc);
            fx.control = Some(ControlEffect::Branch { taken, target });
        }
        Instr::Beq { rs, rt, off } => {
            let taken = read(rs) == read(rt);
            let target = asbr_isa::BranchInfo { zero_compare: None, off }.target(pc);
            fx.control = Some(ControlEffect::Branch { taken, target });
        }
        Instr::Bne { rs, rt, off } => {
            let taken = read(rs) != read(rt);
            let target = asbr_isa::BranchInfo { zero_compare: None, off }.target(pc);
            fx.control = Some(ControlEffect::Branch { taken, target });
        }
        Instr::J { .. } => {
            let target = instr.direct_jump_target(pc).expect("J has a direct target");
            fx.control = Some(ControlEffect::Jump { target });
        }
        Instr::Jal { .. } => {
            let target = instr.direct_jump_target(pc).expect("JAL has a direct target");
            fx.control = Some(ControlEffect::Jump { target });
            fx.writeback = Some((Reg::RA, link));
        }
        Instr::Jr { rs } => fx.control = Some(ControlEffect::Jump { target: read(rs) }),
        Instr::Jalr { rd, rs } => {
            // Read before link write, so `jalr r2, r2` behaves.
            let target = read(rs);
            fx.control = Some(ControlEffect::Jump { target });
            fx.writeback = Some((rd, link));
        }
        Instr::CtrlW { ctrl, rs } => fx.ctrl_write = Some((ctrl, read(rs))),
        Instr::Halt => fx.halt = true,
    }

    // Writes to r0 are architectural no-ops.
    if let Some((rd, _)) = fx.writeback {
        if rd.is_zero() {
            fx.writeback = None;
        }
    }
    if fx.load_dst.is_some_and(Reg::is_zero) {
        fx.load_dst = None;
    }
    fx
}

#[cfg(test)]
mod tests {
    use super::*;
    use asbr_isa::Cond;

    fn regs(vals: &[(u8, u32)]) -> impl FnMut(Reg) -> u32 + '_ {
        move |r: Reg| {
            vals.iter()
                .find(|&&(i, _)| i == r.index())
                .map_or(0, |&(_, v)| v)
        }
    }

    #[test]
    fn arithmetic_wraps() {
        let i = Instr::Add { rd: Reg::new(1), rs: Reg::new(2), rt: Reg::new(3) };
        let fx = execute(i, 0, regs(&[(2, u32::MAX), (3, 1)]));
        assert_eq!(fx.writeback, Some((Reg::new(1), 0)));
    }

    #[test]
    fn signed_vs_unsigned_compare() {
        let slt = Instr::Slt { rd: Reg::new(1), rs: Reg::new(2), rt: Reg::new(3) };
        let fx = execute(slt, 0, regs(&[(2, (-1i32) as u32), (3, 1)]));
        assert_eq!(fx.writeback.unwrap().1, 1);
        let sltu = Instr::Sltu { rd: Reg::new(1), rs: Reg::new(2), rt: Reg::new(3) };
        let fx = execute(sltu, 0, regs(&[(2, (-1i32) as u32), (3, 1)]));
        assert_eq!(fx.writeback.unwrap().1, 0);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let div = Instr::Div { rd: Reg::new(1), rs: Reg::new(2), rt: Reg::new(3) };
        let fx = execute(div, 0, regs(&[(2, 10), (3, 0)]));
        assert_eq!(fx.writeback.unwrap().1, 0);
        let fx = execute(div, 0, regs(&[(2, i32::MIN as u32), (3, (-1i32) as u32)]));
        assert_eq!(fx.writeback.unwrap().1, i32::MIN as u32, "MIN/-1 wraps");
    }

    #[test]
    fn arithmetic_shift_preserves_sign() {
        let sra = Instr::Sra { rd: Reg::new(1), rt: Reg::new(2), shamt: 4 };
        let fx = execute(sra, 0, regs(&[(2, (-64i32) as u32)]));
        assert_eq!(fx.writeback.unwrap().1 as i32, -4);
    }

    #[test]
    fn load_effect_and_extension() {
        let lh = Instr::Load {
            rt: Reg::new(5),
            rs: Reg::new(4),
            off: -2,
            width: MemWidth::Half,
            unsigned: false,
        };
        let fx = execute(lh, 0, regs(&[(4, 0x102)]));
        let m = fx.mem.unwrap();
        assert_eq!(m.addr, 0x100);
        assert_eq!(m.bytes, 2);
        assert_eq!(m.store, None);
        assert_eq!(fx.load_dst, Some(Reg::new(5)));
        assert_eq!(extend_load(0x8000, MemWidth::Half, false) as i32, -32768);
        assert_eq!(extend_load(0x8000, MemWidth::Half, true), 0x8000);
        assert_eq!(extend_load(0xFF, MemWidth::Byte, false) as i32, -1);
    }

    #[test]
    fn store_effect_carries_value() {
        let sw = Instr::Store { rt: Reg::new(5), rs: Reg::new(4), off: 8, width: MemWidth::Word };
        let fx = execute(sw, 0, regs(&[(4, 0x100), (5, 77)]));
        assert_eq!(fx.mem.unwrap().store, Some(77));
        assert_eq!(fx.load_dst, None);
    }

    #[test]
    fn branch_resolution() {
        let b = Instr::BranchZ { cond: Cond::Ltz, rs: Reg::new(3), off: 10 };
        let fx = execute(b, 0x100, regs(&[(3, (-5i32) as u32)]));
        match fx.control.unwrap() {
            ControlEffect::Branch { taken, target } => {
                assert!(taken);
                assert_eq!(target, 0x100 + 4 + 40);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(fx.control.unwrap().next_pc(0x100), 0x100 + 44);
    }

    #[test]
    fn untaken_branch_falls_through() {
        let b = Instr::Beq { rs: Reg::new(1), rt: Reg::new(2), off: 10 };
        let fx = execute(b, 0x100, regs(&[(1, 1), (2, 2)]));
        assert_eq!(fx.control.unwrap().next_pc(0x100), 0x104);
    }

    #[test]
    fn jal_links_and_jumps() {
        let j = Instr::Jal { target: 0x2000 >> 2 };
        let fx = execute(j, 0x100, regs(&[]));
        assert_eq!(fx.writeback, Some((Reg::RA, 0x104)));
        assert_eq!(fx.control.unwrap().next_pc(0x100), 0x2000);
    }

    #[test]
    fn jalr_same_register() {
        let j = Instr::Jalr { rd: Reg::new(2), rs: Reg::new(2) };
        let fx = execute(j, 0x100, regs(&[(2, 0x3000)]));
        assert_eq!(fx.control.unwrap().next_pc(0x100), 0x3000);
        assert_eq!(fx.writeback, Some((Reg::new(2), 0x104)));
    }

    #[test]
    fn writes_to_r0_are_dropped() {
        let i = Instr::Addi { rt: Reg::ZERO, rs: Reg::ZERO, imm: 5 };
        assert_eq!(execute(i, 0, regs(&[])).writeback, None);
    }

    #[test]
    fn halt_and_ctrlw() {
        assert!(execute(Instr::Halt, 0, regs(&[])).halt);
        let fx = execute(Instr::CtrlW { ctrl: 0, rs: Reg::new(9) }, 0, regs(&[(9, 3)]));
        assert_eq!(fx.ctrl_write, Some((0, 3)));
    }
}
