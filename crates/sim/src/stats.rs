//! Pipeline performance counters and per-cycle attribution.

use std::collections::BTreeMap;

use asbr_bpred::AccuracyTracker;

/// Per-structure activity counters, the raw input to energy accounting.
///
/// The paper's power argument (Sec. 1): "The total number of instructions
/// passing through the pipeline is reduced, as a branch instruction folded
/// in the fetch stage proceeds no further in the pipeline and no
/// mispredicted instructions are executed. Consequently, power consumption
/// is decreased." These counters measure exactly that traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Activity {
    /// Instruction slots fetched (correct *and* wrong path).
    pub fetched: u64,
    /// Fetched slots squashed before retirement (wrong-path work).
    pub squashed: u64,
    /// Slots that passed the decode stage.
    pub decoded: u64,
    /// Slots that executed in EX.
    pub executed: u64,
    /// Data-memory operations performed in MEM.
    pub mem_ops: u64,
    /// Architectural register-file writes at WB.
    pub reg_writes: u64,
    /// Direction-predictor lookups (fetch stage).
    pub predictor_lookups: u64,
    /// Direction-predictor updates (execute stage).
    pub predictor_updates: u64,
}

/// The cause a machine cycle is attributed to. Every cycle lands in
/// exactly one bucket: the WB stage either retires an instruction
/// ([`CycleBucket::Useful`]) or consumes a bubble, and each bubble carries
/// the cause that created it from the latch where it was born.
///
/// This is the disjoint decomposition the event counters of
/// [`PipelineStats`] cannot give: `icache_stall_cycles`,
/// `branch_flushes`×2 and friends count *events* that may overlap in time
/// (a squashed fetch can be mid-refill when the flush lands), so summing
/// them over-counts. The buckets below partition `cycles` exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum CycleBucket {
    /// WB retired an instruction this cycle.
    Useful = 0,
    /// Start-of-run pipeline fill and post-`halt` drain bubbles.
    FillDrain = 1,
    /// Bubble born at fetch waiting on an instruction-cache refill.
    IcacheStall = 2,
    /// Bubble born while MEM drained a data-cache miss (including the
    /// upstream slots frozen behind it).
    DcacheStall = 3,
    /// Bubble from the one-cycle load-use interlock in decode.
    LoadUse = 4,
    /// Bubble from a multi-cycle EX operation (multiply/divide) holding
    /// the execute stage.
    ExOccupancy = 5,
    /// Wrong-path slot squashed by a conditional-branch mispredict
    /// resolving in EX (the classic 2-cycle penalty).
    BranchFlush = 6,
    /// Slot squashed by a direct jump redirecting in decode.
    JumpRedirect = 7,
    /// Wrong-path slot squashed by an indirect jump (`jr`/`jalr`)
    /// resolving in EX.
    IndirectFlush = 8,
}

/// Number of attribution buckets.
pub const NUM_BUCKETS: usize = 9;

impl CycleBucket {
    /// All buckets, in serialization order.
    pub const ALL: [CycleBucket; NUM_BUCKETS] = [
        CycleBucket::Useful,
        CycleBucket::FillDrain,
        CycleBucket::IcacheStall,
        CycleBucket::DcacheStall,
        CycleBucket::LoadUse,
        CycleBucket::ExOccupancy,
        CycleBucket::BranchFlush,
        CycleBucket::JumpRedirect,
        CycleBucket::IndirectFlush,
    ];

    /// Stable snake_case name (used in JSON and reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CycleBucket::Useful => "useful",
            CycleBucket::FillDrain => "fill_drain",
            CycleBucket::IcacheStall => "icache_stall",
            CycleBucket::DcacheStall => "dcache_stall",
            CycleBucket::LoadUse => "load_use",
            CycleBucket::ExOccupancy => "ex_occupancy",
            CycleBucket::BranchFlush => "branch_flush",
            CycleBucket::JumpRedirect => "jump_redirect",
            CycleBucket::IndirectFlush => "indirect_flush",
        }
    }
}

/// Per-branch-site attribution: what one static branch PC cost (flush
/// cycles) and saved (folds) during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchSite {
    /// Mispredict flush events this branch caused (resolving in EX).
    pub flushes: u64,
    /// Machine cycles attributed to this branch's flush bubbles — the
    /// site-level share of [`CycleBucket::BranchFlush`].
    pub flush_cycles: u64,
    /// Times the fetch customization folded this branch out of the
    /// stream. Counted at fetch, so wrong-path folds (later squashed)
    /// are included; the architectural slot saving is the *retirement*
    /// delta against a baseline run, not this event count.
    pub folds: u64,
    /// Times the branch retired at WB. Two runs of the same program
    /// differ in retired count only through folding, so
    /// `baseline.retired - asbr.retired` at a site is exactly its
    /// correct-path folds.
    pub retired: u64,
}

/// Exactly-one-bucket classification of every machine cycle, plus the
/// per-branch-site breakdown of the branch-related buckets.
///
/// Invariants (checked by `debug_assert` in the pipeline and by the
/// repository property tests):
///
/// * `total() == PipelineStats::cycles`
/// * `get(CycleBucket::Useful) == PipelineStats::retired`
/// * `site_flush_cycles() == get(CycleBucket::BranchFlush)`
/// * `site_folds() == PipelineStats::folded_branches`
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleAttribution {
    buckets: [u64; NUM_BUCKETS],
    sites: BTreeMap<u32, BranchSite>,
}

impl CycleAttribution {
    /// Charges one cycle to `bucket`. Branch-flush cycles are also
    /// charged to the originating branch's site.
    pub fn charge(&mut self, bucket: CycleBucket, origin_pc: u32) {
        self.buckets[bucket as usize] += 1;
        if bucket == CycleBucket::BranchFlush {
            self.sites.entry(origin_pc).or_default().flush_cycles += 1;
        }
    }

    /// Records a mispredict flush *event* at the branch site `pc`.
    pub fn note_flush(&mut self, pc: u32) {
        self.sites.entry(pc).or_default().flushes += 1;
    }

    /// Records a fetch-stage fold of the branch at `pc`.
    pub fn note_fold(&mut self, pc: u32) {
        self.sites.entry(pc).or_default().folds += 1;
    }

    /// Records the retirement of the conditional branch at `pc`.
    pub fn note_branch_retire(&mut self, pc: u32) {
        self.sites.entry(pc).or_default().retired += 1;
    }

    /// Cycles attributed to `bucket`.
    #[must_use]
    pub fn get(&self, bucket: CycleBucket) -> u64 {
        self.buckets[bucket as usize]
    }

    /// The raw bucket array, in [`CycleBucket::ALL`] order.
    #[must_use]
    pub fn buckets(&self) -> [u64; NUM_BUCKETS] {
        self.buckets
    }

    /// Sum over all buckets — equals total machine cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Cycles lost to anything but useful retirement.
    #[must_use]
    pub fn lost(&self) -> u64 {
        self.total() - self.get(CycleBucket::Useful)
    }

    /// Per-branch-site records, keyed by branch PC.
    #[must_use]
    pub fn sites(&self) -> &BTreeMap<u32, BranchSite> {
        &self.sites
    }

    /// The record for the branch at `pc`.
    #[must_use]
    pub fn site(&self, pc: u32) -> Option<&BranchSite> {
        self.sites.get(&pc)
    }

    /// Sum of per-site flush cycles — must equal the
    /// [`CycleBucket::BranchFlush`] bucket.
    #[must_use]
    pub fn site_flush_cycles(&self) -> u64 {
        self.sites.values().map(|s| s.flush_cycles).sum()
    }

    /// Sum of per-site folds — must equal
    /// [`PipelineStats::folded_branches`].
    #[must_use]
    pub fn site_folds(&self) -> u64 {
        self.sites.values().map(|s| s.folds).sum()
    }

    /// Restores an attribution from serialized parts (the result cache).
    #[must_use]
    pub fn from_parts(
        buckets: [u64; NUM_BUCKETS],
        sites: BTreeMap<u32, BranchSite>,
    ) -> CycleAttribution {
        CycleAttribution { buckets, sites }
    }
}

/// Counters accumulated by one pipelined run — the raw material of the
/// paper's Figure 6 (cycles / CPI / accuracy) and Figure 11 (cycles /
/// improvement) tables.
///
/// The scalar fields are *event* counters; overlapping causes (a flush
/// landing mid-refill) are each counted by their own counter, so the
/// events do not sum to `cycles`. The [`attribution`] field carries the
/// disjoint per-cycle decomposition that does.
///
/// [`attribution`]: PipelineStats::attribution
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Total machine cycles.
    pub cycles: u64,
    /// Committed (retired) instructions, including `halt`.
    pub retired: u64,
    /// Per-branch direction-prediction outcomes for branches handled by
    /// the general-purpose predictor (folded branches never appear here).
    pub branches: AccuracyTracker,
    /// Wrong-path flushes caused by conditional branches (2 lost slots
    /// each).
    pub branch_flushes: u64,
    /// Redirects by direct jumps in decode (1 lost slot each).
    pub jump_redirects: u64,
    /// Wrong-path flushes by indirect jumps resolving in EX.
    pub indirect_flushes: u64,
    /// Cycles the ID stage spent stalled on the load-use interlock.
    pub load_use_stalls: u64,
    /// Cycles fetch stalled on instruction-cache misses.
    pub icache_stall_cycles: u64,
    /// Cycles the MEM stage stalled on data-cache misses.
    pub dcache_stall_cycles: u64,
    /// Extra cycles multi-cycle operations (multiply/divide) occupied EX.
    pub ex_stall_cycles: u64,
    /// Branches folded out of the instruction stream by the fetch
    /// customization (they are *not* counted in `retired`: they never
    /// enter the pipe — the paper's power argument).
    pub folded_branches: u64,
    /// Per-structure activity for energy accounting.
    pub activity: Activity,
    /// Exactly-one-bucket per-cycle attribution and per-branch-site
    /// breakdown.
    pub attribution: CycleAttribution,
}

impl PipelineStats {
    /// Cycles per committed instruction. [`f64::NAN`] when nothing
    /// retired — a run with no commits has no meaningful CPI, and the old
    /// `0.0` silently read as "perfect" downstream.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        if self.retired == 0 {
            f64::NAN
        } else {
            self.cycles as f64 / self.retired as f64
        }
    }

    /// Overall direction-prediction accuracy (the `Acc` column of
    /// Figure 6).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        self.branches.overall_accuracy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_handles_zero_retired() {
        let s = PipelineStats::default();
        assert!(s.cpi().is_nan(), "no commits -> no CPI, not a perfect 0.0");
    }

    #[test]
    fn cpi_is_ratio() {
        let s = PipelineStats { cycles: 150, retired: 100, ..PipelineStats::default() };
        assert!((s.cpi() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn attribution_partitions_and_tracks_sites() {
        let mut a = CycleAttribution::default();
        a.charge(CycleBucket::Useful, 0x100);
        a.charge(CycleBucket::Useful, 0x104);
        a.charge(CycleBucket::BranchFlush, 0x200);
        a.charge(CycleBucket::BranchFlush, 0x200);
        a.charge(CycleBucket::IcacheStall, 0x108);
        a.note_flush(0x200);
        a.note_fold(0x300);
        assert_eq!(a.total(), 5);
        assert_eq!(a.get(CycleBucket::Useful), 2);
        assert_eq!(a.lost(), 3);
        assert_eq!(a.site_flush_cycles(), a.get(CycleBucket::BranchFlush));
        assert_eq!(a.site(0x200).unwrap().flushes, 1);
        assert_eq!(a.site(0x200).unwrap().flush_cycles, 2);
        assert_eq!(a.site(0x300).unwrap().folds, 1);
        assert_eq!(a.site_folds(), 1);
    }

    #[test]
    fn bucket_names_are_stable_and_distinct() {
        let names: Vec<&str> = CycleBucket::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), NUM_BUCKETS);
        for (i, n) in names.iter().enumerate() {
            assert!(!n.is_empty());
            assert!(!names[i + 1..].contains(n), "duplicate bucket name {n}");
        }
        for (i, b) in CycleBucket::ALL.iter().enumerate() {
            assert_eq!(*b as usize, i, "ALL order must match discriminant order");
        }
    }
}
