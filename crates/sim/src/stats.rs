//! Pipeline performance counters.

use asbr_bpred::AccuracyTracker;

/// Per-structure activity counters, the raw input to energy accounting.
///
/// The paper's power argument (Sec. 1): "The total number of instructions
/// passing through the pipeline is reduced, as a branch instruction folded
/// in the fetch stage proceeds no further in the pipeline and no
/// mispredicted instructions are executed. Consequently, power consumption
/// is decreased." These counters measure exactly that traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Activity {
    /// Instruction slots fetched (correct *and* wrong path).
    pub fetched: u64,
    /// Fetched slots squashed before retirement (wrong-path work).
    pub squashed: u64,
    /// Slots that passed the decode stage.
    pub decoded: u64,
    /// Slots that executed in EX.
    pub executed: u64,
    /// Data-memory operations performed in MEM.
    pub mem_ops: u64,
    /// Architectural register-file writes at WB.
    pub reg_writes: u64,
    /// Direction-predictor lookups (fetch stage).
    pub predictor_lookups: u64,
    /// Direction-predictor updates (execute stage).
    pub predictor_updates: u64,
}

/// Counters accumulated by one pipelined run — the raw material of the
/// paper's Figure 6 (cycles / CPI / accuracy) and Figure 11 (cycles /
/// improvement) tables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Total machine cycles.
    pub cycles: u64,
    /// Committed (retired) instructions, including `halt`.
    pub retired: u64,
    /// Per-branch direction-prediction outcomes for branches handled by
    /// the general-purpose predictor (folded branches never appear here).
    pub branches: AccuracyTracker,
    /// Wrong-path flushes caused by conditional branches (2 lost slots
    /// each).
    pub branch_flushes: u64,
    /// Redirects by direct jumps in decode (1 lost slot each).
    pub jump_redirects: u64,
    /// Wrong-path flushes by indirect jumps resolving in EX.
    pub indirect_flushes: u64,
    /// Cycles the ID stage spent stalled on the load-use interlock.
    pub load_use_stalls: u64,
    /// Cycles fetch stalled on instruction-cache misses.
    pub icache_stall_cycles: u64,
    /// Cycles the MEM stage stalled on data-cache misses.
    pub dcache_stall_cycles: u64,
    /// Extra cycles multi-cycle operations (multiply/divide) occupied EX.
    pub ex_stall_cycles: u64,
    /// Branches folded out of the instruction stream by the fetch
    /// customization (they are *not* counted in `retired`: they never
    /// enter the pipe — the paper's power argument).
    pub folded_branches: u64,
    /// Per-structure activity for energy accounting.
    pub activity: Activity,
}

impl PipelineStats {
    /// Cycles per committed instruction.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.cycles as f64 / self.retired as f64
        }
    }

    /// Overall direction-prediction accuracy (the `Acc` column of
    /// Figure 6).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        self.branches.overall_accuracy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_handles_zero_retired() {
        let s = PipelineStats::default();
        assert_eq!(s.cpi(), 0.0);
    }

    #[test]
    fn cpi_is_ratio() {
        let s = PipelineStats { cycles: 150, retired: 100, ..PipelineStats::default() };
        assert!((s.cpi() - 1.5).abs() < 1e-12);
    }
}
