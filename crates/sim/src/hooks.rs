//! Fetch-stage customization hooks.
//!
//! The paper's central idea is a *microarchitecturally reprogrammable*
//! fetch-stage unit. The pipeline stays generic over a [`FetchHooks`]
//! implementation; the `asbr-core` crate supplies the Branch Identification
//! Table / Branch Direction Table machinery through this trait, and
//! [`NullHooks`] gives the uncustomized baseline processor.

use asbr_isa::{Instr, Reg};

use crate::stats::CycleBucket;

/// Pipeline point at which a computed register value is *published* to the
/// early-condition-evaluation logic (paper, Sec. 5.2).
///
/// The publish point determines the *threshold*: the minimum def→branch
/// separation (in dynamic instruction slots) for a branch to be foldable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PublishPoint {
    /// Aggressive: published at the end of the execute stage
    /// (threshold 2). Loads still publish after MEM.
    Execute,
    /// Forwarding path from the EX/MEM latch: available at the end of the
    /// 4th stage (threshold 3). This is the paper's primary configuration.
    #[default]
    Mem,
    /// Published only at register commit, as in an unmodified pipeline
    /// (threshold 4).
    Commit,
}

impl PublishPoint {
    /// The def→branch distance (independent instructions between the
    /// predicate definition and the branch) above which folding succeeds
    /// on a straight-line 5-stage pipe.
    #[must_use]
    pub fn threshold(self) -> u32 {
        match self {
            PublishPoint::Execute => 2,
            PublishPoint::Mem => 3,
            PublishPoint::Commit => 4,
        }
    }
}

/// A fetch-stage folding decision: the fetched branch is replaced by its
/// target (or fall-through) instruction and never enters the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Folded {
    /// The replacement instruction (BTI on taken, BFI on fall-through).
    pub replacement: Instr,
    /// The replacement's own address (BTA, or branch pc + 4).
    pub replacement_pc: u32,
    /// Where fetch continues (BTA + 4, or branch pc + 8).
    pub next_pc: u32,
    /// The pre-resolved branch direction (for statistics).
    pub taken: bool,
}

/// Fetch-stage customization interface implemented by the ASBR unit.
///
/// Call protocol (enforced by the pipeline):
///
/// 1. every fetched instruction that writes a register is announced with
///    [`note_fetch_writer`] *when its fetch begins*;
/// 2. [`try_fold`] is consulted for every fetched word — returning
///    `Some` replaces the fetch slot; the replacement instruction's writer
///    is announced too;
/// 3. a squashed in-flight instruction that was announced but whose value
///    was never published is retracted with [`note_squash_writer`];
/// 4. when an instruction's value becomes architecturally available at
///    this unit's [`publish_point`], the pipeline calls [`note_publish`];
/// 5. `ctrlw` instructions reach [`note_ctrl_write`] at execute.
///
/// [`note_fetch_writer`]: FetchHooks::note_fetch_writer
/// [`try_fold`]: FetchHooks::try_fold
/// [`note_squash_writer`]: FetchHooks::note_squash_writer
/// [`publish_point`]: FetchHooks::publish_point
/// [`note_publish`]: FetchHooks::note_publish
/// [`note_ctrl_write`]: FetchHooks::note_ctrl_write
pub trait FetchHooks {
    /// The stage at which this unit receives register publishes.
    fn publish_point(&self) -> PublishPoint {
        PublishPoint::Commit
    }

    /// Attempts to fold the instruction fetched at `pc`.
    fn try_fold(&mut self, pc: u32, word: u32) -> Option<Folded>;

    /// An instruction writing `reg` entered the front end.
    fn note_fetch_writer(&mut self, reg: Reg);

    /// A previously announced writer of `reg` was squashed before its
    /// publish.
    fn note_squash_writer(&mut self, reg: Reg);

    /// The in-flight writer of `reg` produced `value` (one publish per
    /// announced writer, in program order).
    fn note_publish(&mut self, reg: Reg, value: u32);

    /// A `ctrlw` wrote `value` to control register `ctrl`.
    fn note_ctrl_write(&mut self, ctrl: u8, value: u32);
}

/// Observation-side extension of the fetch-customization seam: a trace
/// sink the pipeline drives with structured per-cycle events.
///
/// Where [`FetchHooks`] lets a unit *change* the machine (fold branches,
/// track writers), `TraceHooks` only *watches* it: the pipeline reports
/// the bucket every cycle was attributed to, plus retire/fold/flush
/// events. All methods default to no-ops so a sink implements only what
/// it consumes. Attach one with `Pipeline::set_tracer`; the built-in
/// [`crate::ChromeTracer`] renders the stream as Chrome-trace-event JSON.
pub trait TraceHooks {
    /// Cycle `cycle` was attributed to `bucket`; `origin_pc` is the
    /// instruction that caused it (the retired instruction for useful
    /// cycles, the stalling/flushing instruction for bubbles, 0 for
    /// fill/drain).
    fn on_cycle(&mut self, cycle: u64, bucket: CycleBucket, origin_pc: u32) {
        let _ = (cycle, bucket, origin_pc);
    }

    /// The instruction at `pc` retired at `cycle`.
    fn on_retire(&mut self, cycle: u64, pc: u32) {
        let _ = (cycle, pc);
    }

    /// The branch at `pc` was folded at fetch in `cycle`.
    fn on_fold(&mut self, cycle: u64, pc: u32, taken: bool) {
        let _ = (cycle, pc, taken);
    }

    /// The instruction at `pc` flushed the front end at `cycle`
    /// (`indirect` distinguishes `jr`/`jalr` from conditional branches).
    fn on_flush(&mut self, cycle: u64, pc: u32, indirect: bool) {
        let _ = (cycle, pc, indirect);
    }
}

/// The uncustomized baseline: never folds, ignores all notifications.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullHooks;

impl FetchHooks for NullHooks {
    fn try_fold(&mut self, _pc: u32, _word: u32) -> Option<Folded> {
        None
    }

    fn note_fetch_writer(&mut self, _reg: Reg) {}

    fn note_squash_writer(&mut self, _reg: Reg) {}

    fn note_publish(&mut self, _reg: Reg, _value: u32) {}

    fn note_ctrl_write(&mut self, _ctrl: u8, _value: u32) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_match_the_paper() {
        // Sec. 5.2: forwarding after EX/MEM -> threshold 3; value at the
        // end of the execute stage -> threshold 2; plain commit cannot
        // fold the paper's distance-3 example.
        assert_eq!(PublishPoint::Mem.threshold(), 3);
        assert_eq!(PublishPoint::Execute.threshold(), 2);
        assert!(PublishPoint::Commit.threshold() > 3);
    }

    #[test]
    fn null_hooks_never_fold() {
        let mut h = NullHooks;
        assert_eq!(h.try_fold(0x1000, 0), None);
        assert_eq!(h.publish_point(), PublishPoint::Commit);
    }
}
