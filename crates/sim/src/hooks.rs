//! The unified simulator observation/customization surface.
//!
//! The paper's central idea is a *microarchitecturally reprogrammable*
//! fetch-stage unit. Both engines stay generic over one [`SimHooks`]
//! implementation: the `asbr-core` crate supplies the Branch
//! Identification Table / Branch Direction Table machinery through the
//! fetch-customization methods, profiling collectors consume the
//! functional retire stream, and trace sinks consume the per-cycle
//! attribution events. [`NullHooks`] is the do-nothing implementation
//! (the uncustomized baseline processor).
//!
//! `SimHooks` replaced three older single-purpose traits — `FetchHooks`
//! (pipeline fetch customization), `TraceHooks` (per-cycle trace sinks),
//! and `Observer` (interpreter retire stream); their deprecated marker
//! shims have since been removed. Two methods were renamed in the merge:
//! the pipeline's retire event is now [`SimHooks::on_commit`] (the
//! interpreter's architectural retire kept [`SimHooks::on_retire`]), and
//! the interpreter's `on_ctrl_write` merged into
//! [`SimHooks::note_ctrl_write`], which both engines now drive.

use asbr_isa::{Instr, Reg};

use crate::stats::CycleBucket;

/// Pipeline point at which a computed register value is *published* to the
/// early-condition-evaluation logic (paper, Sec. 5.2).
///
/// The publish point determines the *threshold*: the minimum def→branch
/// separation (in dynamic instruction slots) for a branch to be foldable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PublishPoint {
    /// Aggressive: published at the end of the execute stage
    /// (threshold 2). Loads still publish after MEM.
    Execute,
    /// Forwarding path from the EX/MEM latch: available at the end of the
    /// 4th stage (threshold 3). This is the paper's primary configuration.
    #[default]
    Mem,
    /// Published only at register commit, as in an unmodified pipeline
    /// (threshold 4).
    Commit,
}

impl PublishPoint {
    /// The def→branch distance (independent instructions between the
    /// predicate definition and the branch) above which folding succeeds
    /// on a straight-line 5-stage pipe.
    #[must_use]
    pub fn threshold(self) -> u32 {
        match self {
            PublishPoint::Execute => 2,
            PublishPoint::Mem => 3,
            PublishPoint::Commit => 4,
        }
    }
}

/// A fetch-stage folding decision: the fetched branch is replaced by its
/// target (or fall-through) instruction and never enters the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Folded {
    /// The replacement instruction (BTI on taken, BFI on fall-through).
    pub replacement: Instr,
    /// The replacement's own address (BTA, or branch pc + 4).
    pub replacement_pc: u32,
    /// Where fetch continues (BTA + 4, or branch pc + 8).
    pub next_pc: u32,
    /// The pre-resolved branch direction (for statistics).
    pub taken: bool,
}

/// The single simulator hook surface: fetch customization, pipeline trace
/// events, and the interpreter's functional retire stream in one trait.
///
/// Every method has a no-op default — implement only what you consume.
/// The trait is object-safe (the pipeline's trace sink is a
/// `Box<dyn SimHooks>`).
///
/// # Fetch customization (pipeline)
///
/// Call protocol, enforced by the pipeline:
///
/// 1. every fetched instruction that writes a register is announced with
///    [`note_fetch_writer`] *when its fetch begins*;
/// 2. [`try_fold`] is consulted for every fetched word — returning
///    `Some` replaces the fetch slot; the replacement instruction's writer
///    is announced too;
/// 3. a squashed in-flight instruction that was announced but whose value
///    was never published is retracted with [`note_squash_writer`];
/// 4. when an instruction's value becomes architecturally available at
///    this unit's [`publish_point`], the pipeline calls [`note_publish`];
/// 5. `ctrlw` instructions reach [`note_ctrl_write`] at execute (the
///    interpreter reports them through the same method).
///
/// # Trace events (pipeline)
///
/// [`on_cycle`] attributes every machine cycle to a bucket; [`on_commit`],
/// [`on_fold`], and [`on_flush`] mark retires, fetch-stage folds, and
/// front-end flushes. Attach a sink with `Pipeline::set_tracer`; the
/// built-in [`crate::ChromeTracer`] renders the stream as
/// Chrome-trace-event JSON.
///
/// # Functional retire stream (interpreter)
///
/// [`on_retire`], [`on_branch`], and [`on_reg_write`] fire per retired
/// instruction — the profiling interface behind the paper's Figures 7/9/10
/// statistics and Sec. 6 candidate selection.
///
/// [`note_fetch_writer`]: SimHooks::note_fetch_writer
/// [`try_fold`]: SimHooks::try_fold
/// [`note_squash_writer`]: SimHooks::note_squash_writer
/// [`publish_point`]: SimHooks::publish_point
/// [`note_publish`]: SimHooks::note_publish
/// [`note_ctrl_write`]: SimHooks::note_ctrl_write
/// [`on_cycle`]: SimHooks::on_cycle
/// [`on_commit`]: SimHooks::on_commit
/// [`on_fold`]: SimHooks::on_fold
/// [`on_flush`]: SimHooks::on_flush
/// [`on_retire`]: SimHooks::on_retire
/// [`on_branch`]: SimHooks::on_branch
/// [`on_reg_write`]: SimHooks::on_reg_write
#[allow(unused_variables)]
pub trait SimHooks {
    // --- fetch customization (pipeline) -------------------------------

    /// The stage at which this unit receives register publishes.
    fn publish_point(&self) -> PublishPoint {
        PublishPoint::Commit
    }

    /// Attempts to fold the instruction fetched at `pc`.
    fn try_fold(&mut self, pc: u32, word: u32) -> Option<Folded> {
        None
    }

    /// Whether [`try_fold`](SimHooks::try_fold) could *ever* return `Some`
    /// for `pc`. Consulted once per static instruction at load time so the
    /// fetch stage can skip the per-fetch `try_fold` call for instructions
    /// this unit can never fold (the answer is baked into the pre-decoded
    /// metadata).
    ///
    /// Must be conservative: returning `true` for a never-folding `pc`
    /// only costs a wasted `try_fold` call; returning `false` for a
    /// foldable one would silently disable the customization. The default
    /// says "maybe" for everything, which preserves the pre-existing
    /// call-every-fetch behaviour for custom hooks. Dynamically fetched
    /// PCs outside the pre-decoded text always consult `try_fold`.
    fn fold_candidate(&self, pc: u32) -> bool {
        let _ = pc;
        true
    }

    /// An instruction writing `reg` entered the front end.
    fn note_fetch_writer(&mut self, reg: Reg) {}

    /// A previously announced writer of `reg` was squashed before its
    /// publish.
    fn note_squash_writer(&mut self, reg: Reg) {}

    /// The in-flight writer of `reg` produced `value` (one publish per
    /// announced writer, in program order).
    fn note_publish(&mut self, reg: Reg, value: u32) {}

    /// A `ctrlw` wrote `value` to control register `ctrl` (reported by
    /// both engines).
    fn note_ctrl_write(&mut self, ctrl: u8, value: u32) {}

    /// The pipeline's architectural state was replaced wholesale by
    /// [`crate::Pipeline::restore`]: `regs` is the restored register
    /// file, the pipeline is empty, and no writers are in flight. Units
    /// that shadow register values (the ASBR predicate storage) MUST
    /// rebuild that shadow here — their construction-time state reflects
    /// the *reset* register file, and stale shadows turn into wrong fold
    /// directions, i.e. wrong execution, after a mid-run restore.
    fn note_restore(&mut self, regs: &[u32; 32]) {
        let _ = regs;
    }

    // --- trace events (pipeline) --------------------------------------

    /// Cycle `cycle` was attributed to `bucket`; `origin_pc` is the
    /// instruction that caused it (the retired instruction for useful
    /// cycles, the stalling/flushing instruction for bubbles, 0 for
    /// fill/drain).
    fn on_cycle(&mut self, cycle: u64, bucket: CycleBucket, origin_pc: u32) {}

    /// The instruction at `pc` committed (retired from the pipeline) at
    /// `cycle`.
    fn on_commit(&mut self, cycle: u64, pc: u32) {}

    /// The branch at `pc` was folded at fetch in `cycle`.
    fn on_fold(&mut self, cycle: u64, pc: u32, taken: bool) {}

    /// The instruction at `pc` flushed the front end at `cycle`
    /// (`indirect` distinguishes `jr`/`jalr` from conditional branches).
    fn on_flush(&mut self, cycle: u64, pc: u32, indirect: bool) {}

    // --- functional retire stream (interpreter) -----------------------

    /// `instr` at `pc` retired as the `icount`-th dynamic instruction.
    fn on_retire(&mut self, pc: u32, instr: Instr, icount: u64) {}

    /// A conditional branch at `pc` resolved.
    fn on_branch(&mut self, pc: u32, instr: Instr, taken: bool, icount: u64) {}

    /// `reg` received `value` (at the `icount`-th dynamic instruction).
    fn on_reg_write(&mut self, reg: Reg, value: u32, icount: u64) {}
}

/// The do-nothing [`SimHooks`]: never folds, ignores every event — the
/// uncustomized baseline processor and the silent observer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullHooks;

impl SimHooks for NullHooks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_match_the_paper() {
        // Sec. 5.2: forwarding after EX/MEM -> threshold 3; value at the
        // end of the execute stage -> threshold 2; plain commit cannot
        // fold the paper's distance-3 example.
        assert_eq!(PublishPoint::Mem.threshold(), 3);
        assert_eq!(PublishPoint::Execute.threshold(), 2);
        assert!(PublishPoint::Commit.threshold() > 3);
    }

    #[test]
    fn null_hooks_never_fold() {
        let mut h = NullHooks;
        assert_eq!(h.try_fold(0x1000, 0), None);
        assert_eq!(h.publish_point(), PublishPoint::Commit);
    }

    #[test]
    fn simhooks_bounds_cover_the_former_shim_uses() {
        // The deprecated FetchHooks/TraceHooks/Observer marker shims are
        // gone; the unified trait serves every former bound, including
        // unsized (trait-object) receivers.
        fn takes_hooks<H: SimHooks>(h: &H) -> PublishPoint {
            h.publish_point()
        }
        fn takes_dyn_hooks<H: SimHooks + ?Sized>(_h: &H) {}
        assert_eq!(takes_hooks(&NullHooks), PublishPoint::Commit);
        takes_dyn_hooks::<dyn SimHooks>(&NullHooks);
    }
}
