//! Public per-instruction timing facts of the 5-stage pipeline.
//!
//! The pipeline derives these numbers internally (`SlotMeta` bakes the EX
//! occupancy into its per-slot metadata; the stage logic hard-codes the
//! flush geometry). Static analyzers — notably the `asbr-check` cycle-bound
//! analyzer — need the same facts without instantiating a simulator, so
//! they live here as the single source of truth both sides share.

use asbr_isa::Instr;

/// Fetch slots squashed by a wrong-path conditional branch resolving in
/// EX: the decode slot plus the fetch in flight (the classic 2-cycle
/// penalty of a 5-stage pipe).
pub const BRANCH_FLUSH_SLOTS: u32 = 2;

/// Fetch slots squashed by an indirect jump (`jr`/`jalr`) resolving in EX
/// — same wrong-path depth as a mispredicted branch.
pub const INDIRECT_FLUSH_SLOTS: u32 = 2;

/// Fetch slots lost to a direct jump (`j`/`jal`) redirecting in decode.
pub const JUMP_REDIRECT_SLOTS: u32 = 1;

/// Bubbles a dependent instruction waits behind a load (the load-use
/// interlock).
pub const LOAD_USE_SLOTS: u32 = 1;

/// Cycles the pipeline spends filling before the first instruction can
/// retire (stages between IF and WB).
pub const PIPE_FILL_CYCLES: u32 = 4;

/// EX-stage occupancy of `instr` in cycles (≥ 1) under the configured
/// multiply/divide latencies — the same number `SlotMeta` bakes into the
/// pipeline's per-slot metadata.
#[must_use]
pub fn ex_latency(instr: Instr, mul_latency: u32, div_latency: u32) -> u32 {
    match instr {
        Instr::Mul { .. } => mul_latency.max(1),
        Instr::Div { .. } | Instr::Rem { .. } => div_latency.max(1),
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asbr_isa::Reg;

    #[test]
    fn latencies_follow_the_configuration() {
        let r = Reg::new(2);
        let mul = Instr::Mul { rd: r, rs: r, rt: r };
        let div = Instr::Div { rd: r, rs: r, rt: r };
        let rem = Instr::Rem { rd: r, rs: r, rt: r };
        let add = Instr::Add { rd: r, rs: r, rt: r };
        assert_eq!(ex_latency(mul, 4, 12), 4);
        assert_eq!(ex_latency(div, 4, 12), 12);
        assert_eq!(ex_latency(rem, 4, 12), 12);
        assert_eq!(ex_latency(add, 4, 12), 1);
        // Degenerate configurations clamp to a single cycle.
        assert_eq!(ex_latency(mul, 0, 0), 1);
    }
}
