//! Architectural checkpoints for sampled simulation.
//!
//! A [`Checkpoint`] captures the complete *architectural* state of a run
//! at an instruction boundary — registers, PC, memory image, MMIO device
//! state — plus the data-cache contents as warmed by the in-order
//! architectural access stream. It is taken cheaply by the functional
//! [`crate::Interp`] and consumed by [`crate::Pipeline::restore`], which
//! resumes cycle-accurate execution from that point.
//!
//! # What carries over exactly, and what does not
//!
//! The interpreter and the pipeline drive the D-cache with the *same*
//! in-order architectural data-access stream (wrong-path instructions
//! never reach MEM, and MMIO accesses bypass the D-cache in both
//! engines), so the checkpointed D-cache at instruction `N` is bit-exact
//! against a detailed run paused at its `N`-th retire — provided the
//! interpreter was built with the same memory geometry
//! ([`crate::Interp::with_config`]).
//!
//! The I-cache, BTB, return-address stack, and any attached
//! fetch-customization state are *not* captured: the functional engine
//! never exercises them (its fast path never touches the I-cache), and
//! the pipeline additionally trains them on wrong-path fetches that the
//! interpreter cannot reproduce. A restored pipeline therefore starts
//! with those structures cold; sampled execution handles this with a
//! detailed warm-up prefix per window whose measurements are discarded
//! (see `docs/performance.md`, "Sampling error model").
//!
//! The branch *direction* predictor is the exception: warm-up cannot fix
//! it (saturating counters under alternating patterns orbit their initial
//! state forever, so a fresh predictor never converges to the long-run
//! one), and wrong-path lookups don't mutate table predictors — so
//! [`crate::Interp::warm_predictor`] trains one along the architectural
//! path and the checkpoint snapshots it for the restored pipeline to
//! adopt.

use asbr_bpred::Predictor;
use asbr_mem::MemSystem;

/// Architectural state of a run at an instruction boundary, as captured
/// by [`crate::Interp::checkpoint`].
#[derive(Debug)]
pub struct Checkpoint {
    /// Dynamic instructions retired up to (and at) this point.
    pub(crate) icount: u64,
    /// The 32 architectural registers.
    pub(crate) regs: [u32; 32],
    /// Next instruction to execute.
    pub(crate) pc: u32,
    /// Whether `halt` has already executed (a terminal checkpoint).
    pub(crate) halted: bool,
    /// Full memory-system image: sparse memory, MMIO device (remaining
    /// input + produced output), and the warmed D-cache.
    pub(crate) mem: MemSystem,
    /// Whether the capturing engine's decode-once store still mirrored
    /// the loaded text exactly (no self-modifying stores, no raw memory
    /// handed out). When `false`, a restored pipeline distrusts its own
    /// pre-decoded store so every fetch re-reads memory — slower, but
    /// exact in the presence of patched text.
    pub(crate) pristine: bool,
    /// Functionally warmed branch-predictor state, present when the
    /// capturing interpreter had [`crate::Interp::warm_predictor`]
    /// attached. A restored pipeline adopts it in place of its own
    /// (cold) predictor.
    pub(crate) pred: Option<Box<dyn Predictor>>,
}

// Sampled execution replays its windows concurrently, every worker
// restoring from a shared `&Checkpoint` — keep the type provably
// thread-safe (the `Predictor: Send + Sync` bound carries the boxed
// predictor snapshot).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Checkpoint>();
};

impl Clone for Checkpoint {
    fn clone(&self) -> Checkpoint {
        Checkpoint {
            icount: self.icount,
            regs: self.regs,
            pc: self.pc,
            halted: self.halted,
            mem: self.mem.clone(),
            pristine: self.pristine,
            pred: self.pred.as_ref().map(|p| p.clone_box()),
        }
    }
}

impl Checkpoint {
    /// Dynamic instruction count at the capture point.
    #[must_use]
    pub fn icount(&self) -> u64 {
        self.icount
    }

    /// Program counter at the capture point.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Whether the run had already halted when captured.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Whether the capturing engine could still prove its pre-decoded
    /// text mirror exact (see the field docs).
    #[must_use]
    pub fn pristine(&self) -> bool {
        self.pristine
    }
}
