//! Chrome-trace-event rendering of the per-cycle attribution stream.
//!
//! [`ChromeTracer`] is a [`SimHooks`] sink that turns the pipeline's
//! cycle/fold/flush events into the Chrome trace-event JSON format
//! (load the file at `chrome://tracing` or <https://ui.perfetto.dev>).
//! It emits:
//!
//! * a `"ph":"C"` *counter* event per interval, carrying the number of
//!   cycles each [`CycleBucket`] absorbed during that interval — the
//!   counter track shows the stall mix evolving over the run;
//! * a `"ph":"i"` *instant* event per fold and per flush, carrying the
//!   branch PC.
//!
//! The tracer is cheap but not free (one small allocation per event);
//! attach it only for diagnostic runs. Because the pipeline owns its sink
//! as a `Box<dyn SimHooks>`, the tracer clones share state through an
//! `Rc`: keep one handle, give the pipeline the clone, and render with
//! [`ChromeTracer::to_json`] after the run.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::hooks::SimHooks;
use crate::stats::{CycleBucket, NUM_BUCKETS};

/// Default cycle interval between counter snapshots.
pub const DEFAULT_INTERVAL: u64 = 1000;

#[derive(Debug, Default)]
struct TraceState {
    interval: u64,
    /// Per-bucket cycles within the current (not yet emitted) interval.
    window: [u64; NUM_BUCKETS],
    /// Per-bucket cycles over the whole run.
    totals: [u64; NUM_BUCKETS],
    /// Pre-rendered JSON event objects.
    events: Vec<String>,
    /// Last cycle observed (snapshot timestamps).
    last_cycle: u64,
}

impl TraceState {
    fn snapshot(&mut self, ts: u64) {
        let mut args = String::new();
        for (i, b) in CycleBucket::ALL.iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            let _ = write!(args, "\"{}\":{}", b.name(), self.window[i]);
        }
        self.events.push(format!(
            "{{\"name\":\"cycle_buckets\",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\"tid\":1,\"args\":{{{args}}}}}"
        ));
        self.window = [0; NUM_BUCKETS];
    }

    fn instant(&mut self, name: &str, ts: u64, pc: u32, extra: &str) {
        self.events.push(format!(
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"ts\":{ts},\"pid\":1,\"tid\":1,\"s\":\"t\",\
             \"args\":{{\"pc\":\"{pc:#x}\"{extra}}}}}"
        ));
    }
}

/// A [`SimHooks`] sink rendering Chrome trace-event JSON.
///
/// Clones share state: hand a clone to [`crate::Pipeline::set_tracer`] and
/// keep the original to call [`ChromeTracer::to_json`] afterwards.
#[derive(Debug, Clone)]
pub struct ChromeTracer {
    state: Rc<RefCell<TraceState>>,
}

impl Default for ChromeTracer {
    fn default() -> ChromeTracer {
        ChromeTracer::new(DEFAULT_INTERVAL)
    }
}

impl ChromeTracer {
    /// Creates a tracer emitting one counter snapshot every `interval`
    /// cycles (clamped to ≥ 1).
    #[must_use]
    pub fn new(interval: u64) -> ChromeTracer {
        ChromeTracer {
            state: Rc::new(RefCell::new(TraceState {
                interval: interval.max(1),
                ..TraceState::default()
            })),
        }
    }

    /// Per-bucket cycle totals observed so far, in [`CycleBucket::ALL`]
    /// order.
    #[must_use]
    pub fn bucket_totals(&self) -> [u64; NUM_BUCKETS] {
        self.state.borrow().totals
    }

    /// Number of events recorded so far (snapshots + instants).
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.state.borrow().events.len()
    }

    /// Renders the complete trace document: flushes the final partial
    /// interval and wraps every event in the Chrome `traceEvents` array.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut st = self.state.borrow_mut();
        if st.window.iter().any(|&c| c > 0) {
            let ts = st.last_cycle;
            st.snapshot(ts);
        }
        let mut out = String::from("{\"traceEvents\":[");
        for (i, ev) in st.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(ev);
        }
        let total: u64 = st.totals.iter().sum();
        let _ = write!(
            out,
            "],\"displayTimeUnit\":\"ns\",\"metadata\":{{\"total_cycles\":{total}}}}}"
        );
        out
    }
}

impl SimHooks for ChromeTracer {
    fn on_cycle(&mut self, cycle: u64, bucket: CycleBucket, _origin_pc: u32) {
        let mut st = self.state.borrow_mut();
        st.window[bucket as usize] += 1;
        st.totals[bucket as usize] += 1;
        st.last_cycle = cycle;
        if cycle.is_multiple_of(st.interval) {
            st.snapshot(cycle);
        }
    }

    fn on_fold(&mut self, cycle: u64, pc: u32, taken: bool) {
        self.state.borrow_mut().instant("fold", cycle, pc, &format!(",\"taken\":{taken}"));
    }

    fn on_flush(&mut self, cycle: u64, pc: u32, indirect: bool) {
        let name = if indirect { "indirect_flush" } else { "branch_flush" };
        self.state.borrow_mut().instant(name, cycle, pc, "");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_trace_shape() {
        // Feed a fixed event stream and pin the rendered document — the
        // format is consumed by external tools, so its shape is load-bearing.
        let mut t = ChromeTracer::new(2);
        t.on_cycle(1, CycleBucket::FillDrain, 0);
        t.on_cycle(2, CycleBucket::Useful, 0x1000);
        t.on_fold(2, 0x102c, true);
        t.on_cycle(3, CycleBucket::BranchFlush, 0x1008);
        let json = t.to_json();
        assert_eq!(
            json,
            concat!(
                "{\"traceEvents\":[",
                "{\"name\":\"cycle_buckets\",\"ph\":\"C\",\"ts\":2,\"pid\":1,\"tid\":1,",
                "\"args\":{\"useful\":1,\"fill_drain\":1,\"icache_stall\":0,",
                "\"dcache_stall\":0,\"load_use\":0,\"ex_occupancy\":0,\"branch_flush\":0,",
                "\"jump_redirect\":0,\"indirect_flush\":0}},",
                "{\"name\":\"fold\",\"ph\":\"i\",\"ts\":2,\"pid\":1,\"tid\":1,\"s\":\"t\",",
                "\"args\":{\"pc\":\"0x102c\",\"taken\":true}},",
                "{\"name\":\"cycle_buckets\",\"ph\":\"C\",\"ts\":3,\"pid\":1,\"tid\":1,",
                "\"args\":{\"useful\":0,\"fill_drain\":0,\"icache_stall\":0,",
                "\"dcache_stall\":0,\"load_use\":0,\"ex_occupancy\":0,\"branch_flush\":1,",
                "\"jump_redirect\":0,\"indirect_flush\":0}}",
                "],\"displayTimeUnit\":\"ns\",\"metadata\":{\"total_cycles\":3}}"
            )
        );
    }

    #[test]
    fn clones_share_state() {
        let t = ChromeTracer::new(1000);
        let mut clone = t.clone();
        clone.on_cycle(1, CycleBucket::Useful, 0x1000);
        clone.on_flush(1, 0x2000, false);
        assert_eq!(t.bucket_totals()[CycleBucket::Useful as usize], 1);
        assert_eq!(t.event_count(), 1, "instant recorded through the clone");
        assert!(t.to_json().contains("\"name\":\"branch_flush\""));
    }

    #[test]
    fn final_partial_interval_is_flushed() {
        let mut t = ChromeTracer::new(1_000_000);
        t.on_cycle(7, CycleBucket::Useful, 0);
        let json = t.to_json();
        assert!(json.contains("\"ts\":7"), "{json}");
        assert!(json.contains("\"total_cycles\":1"), "{json}");
    }
}
