//! Simulator error type.

use core::fmt;

use asbr_asm::TextDecodeError;
use asbr_mem::MemAccessError;

/// An error terminating a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The word fetched at `pc` does not decode.
    ///
    /// Since loads validate the whole text segment up front (see
    /// [`SimError::InvalidText`]), this only occurs when execution leaves
    /// the text segment and runs into undecodable memory.
    InvalidInstr {
        /// Fetch address.
        pc: u32,
        /// The undecodable word.
        word: u32,
    },
    /// The program's text failed load-time validation; the source error
    /// lists *every* undecodable word with address and source line.
    InvalidText {
        /// The complete bad-word listing.
        source: TextDecodeError,
    },
    /// A data or instruction access faulted.
    Mem {
        /// PC of the faulting instruction.
        pc: u32,
        /// Underlying access error.
        source: MemAccessError,
    },
    /// The run exceeded its cycle (or step) budget without halting —
    /// usually a guest that lost control flow.
    Limit {
        /// The configured budget.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidInstr { pc, word } => {
                write!(f, "invalid instruction {word:#010x} at pc {pc:#010x}")
            }
            SimError::InvalidText { source } => write!(f, "{source}"),
            SimError::Mem { pc, source } => {
                write!(f, "memory fault at pc {pc:#010x}: {source}")
            }
            SimError::Limit { limit } => {
                write!(f, "simulation did not halt within {limit} cycles")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Mem { source, .. } => Some(source),
            SimError::InvalidText { source } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_pc() {
        let e = SimError::InvalidInstr { pc: 0x1000, word: 0xFFFF_FFFF };
        assert!(e.to_string().contains("0x00001000"));
        let e = SimError::Limit { limit: 10 };
        assert!(e.to_string().contains("10 cycles"));
    }
}
