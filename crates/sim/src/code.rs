//! The engines' view of a [`DecodedProgram`]: pre-decoded instructions,
//! the raw word stream, per-instruction static metadata, and the
//! self-modification tracking that keeps the decode-once fast path exact.

use asbr_asm::DecodedProgram;
use asbr_isa::{Instr, Reg};

/// Static (per-text-word) metadata the pipeline would otherwise re-derive
/// every cycle: destination/source registers, branch/halt classification,
/// the resolved direct-jump target, EX occupancy (configured latencies
/// baked in), and the return-address-stack class.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlotMeta {
    /// Destination register (`None` for `r0` and non-writers).
    pub dst: Option<Reg>,
    /// Up-to-two source registers (load-use interlock check).
    pub srcs: [Option<Reg>; 2],
    /// Whether this is a conditional branch.
    pub is_branch: bool,
    /// Whether this is `halt`.
    pub is_halt: bool,
    /// Resolved `j`/`jal` target, if any.
    pub direct_target: Option<u32>,
    /// EX-stage occupancy in cycles (≥ 1).
    pub latency: u32,
    /// How the return-address stack treats this instruction.
    pub ras: RasClass,
    /// Whether the attached hooks could ever fold a fetch at this PC
    /// ([`crate::SimHooks::fold_candidate`], sampled at load). `false`
    /// lets the fetch stage skip the per-fetch `try_fold` call.
    pub fold_cand: bool,
}

/// Return-address-stack behaviour of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RasClass {
    /// No RAS interaction.
    None,
    /// `jal`/`jalr`: push the return address.
    Push,
    /// `jr ra`: pop a predicted return target.
    PopReturn,
}

impl SlotMeta {
    pub(crate) fn from_instr(instr: Instr, pc: u32, mul_latency: u32, div_latency: u32) -> SlotMeta {
        let latency = crate::timing::ex_latency(instr, mul_latency, div_latency);
        let ras = match instr {
            Instr::Jal { .. } | Instr::Jalr { .. } => RasClass::Push,
            Instr::Jr { rs } if rs == Reg::RA => RasClass::PopReturn,
            _ => RasClass::None,
        };
        SlotMeta {
            dst: instr.dst(),
            srcs: instr.srcs(),
            is_branch: instr.branch().is_some(),
            is_halt: instr == Instr::Halt,
            direct_target: instr.direct_jump_target(pc),
            latency,
            ras,
            fold_cand: true,
        }
    }
}

/// The decode-once store both engines fetch from.
///
/// A fetch at an in-text, still-pristine PC is an array lookup: no memory
/// read, no decode. Everything else — out-of-text PCs, misaligned PCs,
/// words clobbered by guest stores, raw-memory mutation through
/// `mem_mut` — falls back to the original read-and-decode path, so
/// behaviour (including runtime [`crate::SimError::InvalidInstr`] for
/// execution running off into garbage) is unchanged.
#[derive(Debug)]
pub(crate) struct CodeStore {
    decoded: DecodedProgram,
    metas: Vec<SlotMeta>,
    /// Per-word: overwritten by a guest store since load (self-modifying
    /// code). Dirty words always take the slow path.
    dirty: Vec<bool>,
    /// Cleared when the owner hands out raw mutable memory access: the
    /// store can no longer prove its copy matches memory, so every fetch
    /// takes the slow path.
    trusted: bool,
}

impl CodeStore {
    /// A store with no text: every lookup misses (the pre-`load` state).
    pub(crate) fn empty() -> CodeStore {
        CodeStore {
            decoded: DecodedProgram::empty(),
            metas: Vec::new(),
            dirty: Vec::new(),
            trusted: true,
        }
    }

    /// Builds the store from a validated decode, baking the configured EX
    /// latencies into the per-instruction metadata.
    pub(crate) fn new(decoded: DecodedProgram, mul_latency: u32, div_latency: u32) -> CodeStore {
        let base = decoded.text_base();
        let metas = decoded
            .instrs()
            .iter()
            .enumerate()
            .map(|(i, &instr)| {
                SlotMeta::from_instr(instr, base.wrapping_add(4 * i as u32), mul_latency, div_latency)
            })
            .collect();
        let dirty = vec![false; decoded.len()];
        CodeStore { decoded, metas, dirty, trusted: true }
    }

    /// Fast-path fetch: the pre-decoded instruction, its raw word, and
    /// its metadata — `None` whenever the slow path must run instead.
    #[inline]
    pub(crate) fn fetch(&self, pc: u32) -> Option<(Instr, u32, SlotMeta)> {
        if !self.trusted {
            return None;
        }
        let idx = self.decoded.index_of(pc)?;
        if self.dirty[idx] {
            return None;
        }
        Some((self.decoded.instrs()[idx], self.decoded.words()[idx], self.metas[idx]))
    }

    /// Metadata for a fold replacement at `pc`: reuses the precomputed
    /// entry when the store holds exactly `instr` there, otherwise
    /// derives it fresh (hooks may substitute arbitrary instructions).
    pub(crate) fn meta_for(
        &self,
        pc: u32,
        instr: Instr,
        mul_latency: u32,
        div_latency: u32,
    ) -> SlotMeta {
        if let Some((cached, _, meta)) = self.fetch(pc) {
            if cached == instr {
                return meta;
            }
        }
        SlotMeta::from_instr(instr, pc, mul_latency, div_latency)
    }

    /// Marks every text word overlapped by a `bytes`-wide store at `addr`
    /// dirty (self-modifying code detection). Cheap for the common case:
    /// two compares reject stores that cannot touch text.
    #[inline]
    pub(crate) fn note_store(&mut self, addr: u32, bytes: u32) {
        let base = self.decoded.text_base();
        let end = self.decoded.text_end();
        if addr >= end || u64::from(addr) + u64::from(bytes) <= u64::from(base) {
            return;
        }
        let first = (addr.max(base) - base) / 4;
        let last_byte = (u64::from(addr) + u64::from(bytes) - 1).min(u64::from(end) - 1) as u32;
        let last = (last_byte - base) / 4;
        for idx in first..=last {
            self.dirty[idx as usize] = true;
        }
    }

    /// Drops trust in the cached copy entirely (raw memory was handed out
    /// mutably); every subsequent fetch takes the slow path.
    pub(crate) fn distrust(&mut self) {
        self.trusted = false;
    }

    /// Whether the store still mirrors guest memory exactly: trusted and
    /// with no word dirtied by a guest store. A pristine store means the
    /// program text at this point equals the loaded image — the condition
    /// under which a checkpoint can skip re-verifying text.
    pub(crate) fn is_pristine(&self) -> bool {
        self.trusted && !self.dirty.iter().any(|&d| d)
    }

    /// Re-samples per-PC fold candidacy from `f`
    /// ([`crate::SimHooks::fold_candidate`]); called once at load so the
    /// fetch stage can consult a precomputed bit instead of the hooks.
    pub(crate) fn mark_fold_candidates(&mut self, f: impl Fn(u32) -> bool) {
        let base = self.decoded.text_base();
        for (i, meta) in self.metas.iter_mut().enumerate() {
            meta.fold_cand = f(base.wrapping_add(4 * i as u32));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asbr_asm::assemble;

    fn store(src: &str) -> CodeStore {
        let p = assemble(src).unwrap();
        CodeStore::new(p.decoded().unwrap(), 1, 1)
    }

    #[test]
    fn fetch_hits_in_text_and_misses_outside() {
        let s = store("main: addi r2, r0, 5\n halt");
        let (instr, word, meta) = s.fetch(0x1000).unwrap();
        assert_eq!(instr, Instr::decode(word).unwrap());
        assert_eq!(meta.dst, Some(Reg::V0));
        assert!(!meta.is_halt);
        let (_, _, halt_meta) = s.fetch(0x1004).unwrap();
        assert!(halt_meta.is_halt);
        assert!(s.fetch(0x1008).is_none(), "past text_end");
        assert!(s.fetch(0x1002).is_none(), "misaligned");
    }

    #[test]
    fn stores_into_text_dirty_exactly_the_overlapped_words() {
        let mut s = store("main: nop\n nop\n nop\n halt");
        s.note_store(0x0FFF_FFF0, 4); // far below text
        s.note_store(0x0020_0000, 4); // far above text
        assert!(s.fetch(0x1000).is_some());
        s.note_store(0x1003, 2); // straddles words 0 and 1
        assert!(s.fetch(0x1000).is_none());
        assert!(s.fetch(0x1004).is_none());
        assert!(s.fetch(0x1008).is_some());
        s.note_store(0x0FFF, 2); // straddles into word 0 from below
        assert!(s.fetch(0x1008).is_some(), "word 2 untouched");
    }

    #[test]
    fn distrust_disables_every_fetch() {
        let mut s = store("main: halt");
        assert!(s.fetch(0x1000).is_some());
        s.distrust();
        assert!(s.fetch(0x1000).is_none());
    }

    #[test]
    fn meta_for_reuses_cached_entry_or_derives() {
        let s = store("main: mul r2, r3, r4\n halt");
        let cached = s.fetch(0x1000).unwrap().0;
        let m = s.meta_for(0x1000, cached, 1, 1);
        assert_eq!(m.latency, 1);
        // Different instruction at a cached pc: derived fresh.
        let m = s.meta_for(0x1000, Instr::Halt, 1, 1);
        assert!(m.is_halt);
        // Out-of-text pc: derived fresh with the given latencies.
        let m = s.meta_for(0x9000, cached, 7, 1);
        assert_eq!(m.latency, 7);
    }
}
