//! Fast functional interpreter.

use asbr_asm::{Program, STACK_TOP};
use asbr_bpred::Predictor;
use asbr_isa::{Instr, Reg, INSTR_BYTES};
use asbr_mem::{MemSystem, MemSystemConfig};

use crate::checkpoint::Checkpoint;
use crate::code::CodeStore;
use crate::exec::{execute, extend_load, ControlEffect};
use crate::hooks::{NullHooks, SimHooks};
use crate::SimError;

/// Default step budget of the one-call [`Interp::execute`] entry point —
/// matches the profiling pass's budget.
pub const DEFAULT_MAX_STEPS: u64 = 2_000_000_000;

/// Result of a completed functional run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Dynamic instructions retired (including `halt`).
    pub instructions: u64,
    /// Output samples the guest produced.
    pub output: Vec<i32>,
}

/// A functional (1-instruction-per-step, untimed) interpreter.
///
/// Shares its instruction semantics with the pipelined simulator via
/// [`crate::exec::execute`]; used for workload validation and for the
/// profiling pass that selects ASBR candidate branches.
///
/// Construction validates and decodes the whole text segment exactly once
/// (see [`asbr_asm::DecodedProgram`]): undecodable words are a load-time
/// [`SimError::InvalidText`] listing every bad word, and the stepping loop
/// indexes the pre-decoded store instead of re-decoding per instruction.
///
/// # Examples
///
/// ```
/// use asbr_asm::assemble;
/// use asbr_sim::Interp;
///
/// let prog = assemble("
/// main:   li r2, 6
///         li r3, 7
///         mul r4, r2, r3
///         halt
/// ")?;
/// let mut it = Interp::new(&prog)?;
/// it.run(10_000)?;
/// assert_eq!(it.reg(asbr_isa::Reg::new(4)), 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Interp {
    regs: [u32; 32],
    pc: u32,
    mem: MemSystem,
    code: CodeStore,
    halted: bool,
    icount: u64,
    /// Functionally warmed branch predictor (sampled simulation): trained
    /// on every architectural branch outcome so checkpoints can carry
    /// predictor state a restored pipeline adopts. `None` by default.
    warm_pred: Option<Box<dyn Predictor>>,
}

impl Interp {
    /// Loads `program` into a fresh machine (default memory geometry; the
    /// caches are irrelevant to functional execution).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidText`] when the program's text fails
    /// load-time validation, listing every undecodable word.
    pub fn new(program: &Program) -> Result<Interp, SimError> {
        Interp::with_config(MemSystemConfig::default(), program)
    }

    /// Loads `program` into a fresh machine with an explicit memory
    /// geometry — the same constructor shape as
    /// [`crate::Pipeline::with_hooks`], for callers that must match a
    /// pipeline's configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidText`] when the program's text fails
    /// load-time validation.
    pub fn with_config(cfg: MemSystemConfig, program: &Program) -> Result<Interp, SimError> {
        let decoded = program.decoded().map_err(|source| SimError::InvalidText { source })?;
        let mut mem = MemSystem::new(cfg);
        program.load_into(mem.memory_mut());
        let mut regs = [0u32; 32];
        regs[usize::from(Reg::SP)] = STACK_TOP;
        Ok(Interp {
            regs,
            pc: program.entry(),
            mem,
            code: CodeStore::new(decoded, 1, 1),
            halted: false,
            icount: 0,
            warm_pred: None,
        })
    }

    /// Loads `program`, queues `input`, and runs to `halt` under the
    /// [`DEFAULT_MAX_STEPS`] budget — the one-call mirror of
    /// [`crate::Pipeline::execute`].
    ///
    /// ```
    /// use asbr_asm::assemble;
    /// use asbr_sim::Interp;
    ///
    /// let prog = assemble("main: halt")?;
    /// let summary = Interp::execute(&prog, [])?;
    /// assert_eq!(summary.instructions, 1);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from load-time validation or the run.
    pub fn execute(
        program: &Program,
        input: impl IntoIterator<Item = i32>,
    ) -> Result<RunSummary, SimError> {
        let mut it = Interp::new(program)?;
        it.feed_input(input);
        it.run(DEFAULT_MAX_STEPS)
    }

    /// Queues input samples for the MMIO device.
    pub fn feed_input<I: IntoIterator<Item = i32>>(&mut self, samples: I) {
        self.mem.io_mut().extend_input(samples);
    }

    /// Attaches a branch predictor for *functional warming*: from now on
    /// every architecturally executed conditional branch trains `pred`
    /// (one `predict` + one `update`, in program order), and
    /// [`Interp::checkpoint`] snapshots its state so a restored
    /// [`crate::Pipeline`] resumes with a predictor warmed by the entire
    /// run prefix rather than a cold one. Without this, saturating-counter
    /// predictors never converge to the long-run state on pattern-biased
    /// branches (2-bit counters under alternating outcomes orbit their
    /// *initial* state forever), leaving a systematic per-window mispredict
    /// bias no detailed warm-up can remove.
    ///
    /// Exact for stateless and per-branch table predictors (the pipeline's
    /// wrong-path lookups don't mutate them); approximate for predictors
    /// with speculative global history.
    pub fn warm_predictor(&mut self, pred: Box<dyn Predictor>) {
        self.warm_pred = Some(pred);
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Whether the machine has executed `halt`.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Dynamic instruction count so far.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.icount
    }

    /// Reads an architectural register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[usize::from(r)]
    }

    /// The memory system (for inspecting guest state or output).
    #[must_use]
    pub fn mem(&self) -> &MemSystem {
        &self.mem
    }

    /// Mutable memory system access.
    ///
    /// Handing out raw memory drops the decode-once fast path for the
    /// rest of the run (the pre-decoded store can no longer prove its
    /// copy of the text matches memory) — behaviour is unchanged, only
    /// speed.
    pub fn mem_mut(&mut self) -> &mut MemSystem {
        self.code.distrust();
        &mut self.mem
    }

    /// Executes one instruction, reporting events to `obs`.
    ///
    /// Returns `Ok(false)` once halted.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on undecodable instructions or memory faults.
    pub fn step_observed(&mut self, obs: &mut impl SimHooks) -> Result<bool, SimError> {
        if self.halted {
            return Ok(false);
        }
        let pc = self.pc;
        // Decode-once fast path: in-text, unmodified words come straight
        // from the pre-decoded store — no memory read, no decode.
        let instr = match self.code.fetch(pc) {
            Some((instr, _, _)) => instr,
            None => {
                let word = self
                    .mem
                    .memory()
                    .read_u32(pc)
                    .map_err(|source| SimError::Mem { pc, source })?;
                Instr::decode(word).map_err(|_| SimError::InvalidInstr { pc, word })?
            }
        };
        self.icount += 1;

        let regs = &self.regs;
        let fx = execute(instr, pc, |r| regs[usize::from(r)]);

        let mut next_pc = pc.wrapping_add(INSTR_BYTES);
        if let Some(ctl) = fx.control {
            next_pc = ctl.next_pc(pc);
            if let ControlEffect::Branch { taken, .. } = ctl {
                if let Some(p) = self.warm_pred.as_mut() {
                    let _ = p.predict(pc);
                    p.update(pc, taken);
                }
                obs.on_branch(pc, instr, taken, self.icount);
            }
        }
        if let Some((rd, v)) = fx.writeback {
            self.regs[usize::from(rd)] = v;
            obs.on_reg_write(rd, v, self.icount);
        }
        if let Some(mem_op) = fx.mem {
            if let Some(value) = mem_op.store {
                // The untimed path shares MMIO semantics with the timed one.
                self.mem
                    .timed_write(mem_op.addr, value, mem_op.bytes)
                    .map_err(|source| SimError::Mem { pc, source })?;
                self.code.note_store(mem_op.addr, mem_op.bytes);
            } else {
                let raw = self
                    .mem
                    .timed_read(mem_op.addr, mem_op.bytes)
                    .map_err(|source| SimError::Mem { pc, source })?
                    .value;
                let width = match mem_op.bytes {
                    1 => asbr_isa::MemWidth::Byte,
                    2 => asbr_isa::MemWidth::Half,
                    _ => asbr_isa::MemWidth::Word,
                };
                let v = extend_load(raw, width, mem_op.unsigned);
                let rd = fx.load_dst.expect("loads have a destination");
                self.regs[usize::from(rd)] = v;
                obs.on_reg_write(rd, v, self.icount);
            }
        }
        if let Some((ctrl, value)) = fx.ctrl_write {
            obs.note_ctrl_write(ctrl, value);
        }
        obs.on_retire(pc, instr, self.icount);

        if fx.halt {
            self.halted = true;
            return Ok(false);
        }
        self.pc = next_pc;
        Ok(true)
    }

    /// Executes one instruction without observation.
    ///
    /// # Errors
    ///
    /// See [`Interp::step_observed`].
    pub fn step(&mut self) -> Result<bool, SimError> {
        self.step_observed(&mut NullHooks)
    }

    /// Runs to `halt`, reporting events to `obs`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Limit`] if `max_steps` instructions execute
    /// without halting, or any error from [`Interp::step_observed`].
    pub fn run_observed(
        &mut self,
        max_steps: u64,
        obs: &mut impl SimHooks,
    ) -> Result<RunSummary, SimError> {
        let budget = max_steps.saturating_sub(self.icount);
        for _ in 0..budget {
            if !self.step_observed(obs)? {
                return Ok(RunSummary {
                    instructions: self.icount,
                    output: self.mem.io().output().to_vec(),
                });
            }
        }
        if self.halted {
            Ok(RunSummary { instructions: self.icount, output: self.mem.io().output().to_vec() })
        } else {
            Err(SimError::Limit { limit: max_steps })
        }
    }

    /// Runs to `halt` without observation.
    ///
    /// # Errors
    ///
    /// See [`Interp::run_observed`].
    pub fn run(&mut self, max_steps: u64) -> Result<RunSummary, SimError> {
        self.run_observed(max_steps, &mut NullHooks)
    }

    /// Steps until the dynamic instruction count reaches `target_icount`
    /// (a pause, not a failure — unlike [`Interp::run`]'s budget).
    ///
    /// Returns `Ok(true)` when the target was reached with the machine
    /// still running, `Ok(false)` when `halt` executed first.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on undecodable instructions or memory faults.
    pub fn run_until(&mut self, target_icount: u64) -> Result<bool, SimError> {
        while self.icount < target_icount {
            if !self.step()? {
                return Ok(false);
            }
        }
        Ok(!self.halted)
    }

    /// Captures the complete architectural state (plus the warmed
    /// D-cache) at the current instruction boundary — the producer side
    /// of sampled simulation. See [`Checkpoint`] for exactly what carries
    /// over into a restored [`crate::Pipeline`].
    #[must_use]
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            icount: self.icount,
            regs: self.regs,
            pc: self.pc,
            halted: self.halted,
            mem: self.mem.clone(),
            pristine: self.code.is_pristine(),
            pred: self.warm_pred.as_ref().map(|p| p.clone_box()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asbr_asm::assemble;

    fn run_asm(src: &str) -> Interp {
        let p = assemble(src).expect("test program assembles");
        let mut it = Interp::new(&p).expect("test program validates");
        it.run(1_000_000).expect("test program halts");
        it
    }

    #[test]
    fn loop_counts_down() {
        let it = run_asm(
            "
            main:   li r4, 5
                    li r2, 0
            loop:   addi r2, r2, 3
                    addi r4, r4, -1
                    bnez r4, loop
                    halt
            ",
        );
        assert_eq!(it.reg(Reg::V0), 15);
        assert!(it.halted());
    }

    #[test]
    fn memory_and_data_segment() {
        let it = run_asm(
            "
            main:   la r5, tbl
                    lw r2, 0(r5)
                    lw r3, 4(r5)
                    add r2, r2, r3
                    sw r2, 8(r5)
                    lw r4, 8(r5)
                    halt
            .data
            tbl:    .word 30, 12, 0
            ",
        );
        assert_eq!(it.reg(Reg::new(4)), 42);
    }

    #[test]
    fn function_call_and_stack() {
        let it = run_asm(
            "
            main:   li   r4, 20
                    jal  double
                    move r16, r2
                    li   r4, 11
                    jal  double
                    add  r16, r16, r2
                    halt
            double: addi r29, r29, -4
                    sw   r31, 0(r29)
                    add  r2, r4, r4
                    lw   r31, 0(r29)
                    addi r29, r29, 4
                    jr   r31
            ",
        );
        assert_eq!(it.reg(Reg::new(16)), 62);
    }

    #[test]
    fn mmio_copy_program() {
        let p = assemble(
            "
            main:   li   r8, 0xFFFF0000
            loop:   lw   r9, 4(r8)      # remaining
                    beqz r9, done
                    lw   r10, 0(r8)     # pop
                    sll  r10, r10, 1
                    sw   r10, 8(r8)     # push
                    j    loop
            done:   halt
            ",
        )
        .unwrap();
        let mut it = Interp::new(&p).unwrap();
        it.feed_input([1, -2, 3]);
        let summary = it.run(100_000).unwrap();
        assert_eq!(summary.output, vec![2, -4, 6]);
    }

    #[test]
    fn one_call_execute_matches_manual_sequence() {
        let p = assemble(
            "
            main:   li   r8, 0xFFFF0000
                    lw   r10, 0(r8)
                    sll  r10, r10, 1
                    sw   r10, 8(r8)
                    halt
            ",
        )
        .unwrap();
        let summary = Interp::execute(&p, [21]).unwrap();
        assert_eq!(summary.output, vec![42]);
        assert_eq!(summary.instructions, 5);
    }

    #[test]
    fn observer_sees_branches_and_writes() {
        #[derive(Default)]
        struct Counter {
            branches: u32,
            taken: u32,
            writes: u32,
        }
        impl SimHooks for Counter {
            fn on_branch(&mut self, _pc: u32, _i: Instr, taken: bool, _n: u64) {
                self.branches += 1;
                self.taken += u32::from(taken);
            }
            fn on_reg_write(&mut self, _r: Reg, _v: u32, _n: u64) {
                self.writes += 1;
            }
        }
        let p = assemble(
            "
            main:   li r4, 3
            loop:   addi r4, r4, -1
                    bnez r4, loop
                    halt
            ",
        )
        .unwrap();
        let mut it = Interp::new(&p).unwrap();
        let mut c = Counter::default();
        it.run_observed(10_000, &mut c).unwrap();
        assert_eq!(c.branches, 3);
        assert_eq!(c.taken, 2);
        assert_eq!(c.writes, 4); // li + 3 addi
    }

    #[test]
    fn step_limit_is_an_error() {
        let p = assemble("main: j main").unwrap();
        let mut it = Interp::new(&p).unwrap();
        assert!(matches!(it.run(100), Err(SimError::Limit { limit: 100 })));
    }

    #[test]
    fn invalid_instruction_reports_pc() {
        let p = assemble("main: nop").unwrap(); // runs off the end into zeroed mem (nops)...
        let mut it = Interp::new(&p).unwrap();
        // Write garbage right after the program and run into it.
        it.mem_mut().memory_mut().write_u32(p.text_end(), 0xFC00_0000).unwrap();
        let err = it.run(10).unwrap_err();
        match err {
            SimError::InvalidInstr { pc, .. } => assert_eq!(pc, p.text_end()),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn invalid_text_is_a_load_time_error() {
        let p = assemble("main: nop\n halt").unwrap();
        let mut words = p.text().to_vec();
        words[0] = 0xFC00_0000;
        let broken = p.clone_with_text(words);
        match Interp::new(&broken) {
            Err(SimError::InvalidText { source }) => {
                assert_eq!(source.bad.len(), 1);
                assert_eq!(source.bad[0].pc, broken.text_base());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn self_modifying_store_is_fetched_fresh() {
        // The guest overwrites its own `addi r2, r2, 1` slot with
        // `addi r2, r2, 7` before reaching it; the decode-once store must
        // notice the store into text and execute the new word.
        let replacement = Instr::Addi { rt: Reg::V0, rs: Reg::V0, imm: 7 }.encode();
        let src = format!(
            "
            main:   li  r6, {replacement:#010x}
                    la  r7, slot
                    sw  r6, 0(r7)
                    li  r2, 0
            slot:   addi r2, r2, 1
                    halt
            "
        );
        let it = run_asm(&src);
        assert_eq!(it.reg(Reg::V0), 7, "patched instruction must execute");
    }

    #[test]
    fn halted_machine_stays_halted() {
        let p = assemble("main: halt").unwrap();
        let mut it = Interp::new(&p).unwrap();
        it.run(10).unwrap();
        assert!(!it.step().unwrap());
        assert_eq!(it.instructions(), 1);
    }
}
