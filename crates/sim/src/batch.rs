//! Batched lock-step simulation: N independent cycle-accurate runs in one
//! engine, bit-identical to N scalar [`crate::Pipeline`] runs.
//!
//! [`BatchPipeline`] holds N *lanes*. Each lane is a full 5-stage machine
//! — same stage ordering, same attribution, same hook protocol as the
//! scalar pipeline — but built on throughput-oriented state:
//!
//! * **flat lane memory** — guest memory below [`FLAT_LIMIT`] (text,
//!   data, stack) is one linear byte array instead of the scalar engine's
//!   hashed page map, so every load/store is an indexed access. Rare
//!   higher addresses fall back to a sparse [`Memory`], and the partition
//!   is by address alone, so semantics (zero-filled reads, alignment
//!   errors) are unchanged.
//! * **pooled pipeline slots** — in-flight instructions live in a small
//!   fixed arena and the stage latches carry indices, so a slot is
//!   written once at fetch instead of being copied through every latch.
//! * **dense statistics** — per-branch-site attribution and prediction
//!   records are arrays indexed by text offset (with a map spill for
//!   out-of-text PCs), converted to the scalar engine's sparse maps only
//!   when a summary is taken. The conversion is exact: the scalar maps
//!   only ever hold touched (non-default) entries.
//!
//! Per-run simulated cycles, the full [`PipelineStats`] (including
//! per-cycle attribution and per-site records), guest output, and
//! architectural registers are **bit-identical** to the scalar engine —
//! pinned by the `tests/batch.rs` differential tests. The win is host
//! throughput only (see `docs/performance.md`, "Batched execution").

use std::collections::BTreeMap;

use asbr_asm::{Program, STACK_TOP};
use asbr_bpred::{
    AccuracyTracker, Bimodal, BranchRecord, Btb, Gshare, Predictor, PredictorKind, ReturnStack,
};
use asbr_isa::{Instr, Reg, INSTR_BYTES};
use asbr_mem::{Access, CacheConfig, MemAccessError, Memory, MemSystemConfig, SampleIo};

use crate::code::{CodeStore, RasClass, SlotMeta};
use crate::exec::{execute, extend_load, ControlEffect, MemOp};
use crate::hooks::{NullHooks, PublishPoint, SimHooks};
use crate::pipeline::{PipelineConfig, PipelineSummary};
use crate::stats::{Activity, BranchSite, CycleAttribution, CycleBucket, PipelineStats, NUM_BUCKETS};
use crate::SimError;

/// Guest addresses below this limit live in the lane's flat byte array;
/// addresses at or above it (none of the linker's text/data/stack layout,
/// which tops out at the 0x00F0_0000 stack) take the sparse fallback.
/// 16 MiB per lane, allocated zeroed — the host commits only the pages a
/// run actually touches.
const FLAT_LIMIT: u32 = 0x0100_0000;

/// Arena capacity (ring). There are seven latch positions (fetching,
/// IF/ID, ID/EX, EX-hold, EX/MEM, MEM-hold, MEM/WB) so at most seven
/// slots are live at once; 8 lets the ring reuse by masking.
const POOL: usize = 8;

/// Cycles one lane runs before the scheduler rotates to the next in
/// [`BatchPipeline::run`] — large enough that a lane's working set
/// (flat memory, caches, predictor tables) stays hot while it runs.
const RUN_CHUNK: u64 = 1 << 16;

/// A bubble tag (cause + origin PC), as in the scalar pipeline.
type Gap = (CycleBucket, u32);

const GAP_FILL: Gap = (CycleBucket::FillDrain, 0);

// ----------------------------------------------------------------------
// Lane memory
// ----------------------------------------------------------------------

/// Shift/mask port of [`asbr_mem::Cache`] for the hot per-cycle path.
///
/// [`CacheConfig::num_sets`] asserts power-of-two line size and set
/// count, so the scalar model's `/ line_bytes`, `% num_sets`, and
/// `/ num_sets` are exactly a shift and a mask — this cache produces the
/// same hit/miss/penalty sequence (same true-LRU victim, same first-win
/// tie-break) without the per-access integer divisions and hit/miss
/// counters. Penalties are what feed the lane's timing; the counters are
/// not part of [`PipelineStats`].
#[derive(Clone)]
struct LaneCache {
    line_shift: u32,
    set_mask: u32,
    set_shift: u32,
    assoc: u32,
    miss_penalty: u32,
    ways: Vec<CacheLine>,
    clock: u64,
}

#[derive(Clone, Copy, Default)]
struct CacheLine {
    valid: bool,
    tag: u32,
    lru: u64,
}

impl LaneCache {
    fn new(cfg: CacheConfig) -> LaneCache {
        let num_sets = cfg.num_sets();
        LaneCache {
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: num_sets - 1,
            set_shift: num_sets.trailing_zeros(),
            assoc: cfg.assoc,
            miss_penalty: cfg.miss_penalty,
            ways: vec![CacheLine::default(); (num_sets * cfg.assoc) as usize],
            clock: 0,
        }
    }

    #[inline]
    fn access(&mut self, addr: u32) -> u32 {
        self.clock += 1;
        let line_addr = addr >> self.line_shift;
        let set = line_addr & self.set_mask;
        let tag = line_addr >> self.set_shift;
        let base = (set * self.assoc) as usize;
        let ways = &mut self.ways[base..base + self.assoc as usize];
        for w in ways.iter_mut() {
            if w.valid && w.tag == tag {
                w.lru = self.clock;
                return 0;
            }
        }
        // Miss: fill the LRU (or first invalid) way, first-min winning —
        // the same choice `Iterator::min_by_key` makes in the scalar model.
        let mut victim = 0usize;
        let mut best = u64::MAX;
        for (i, w) in ways.iter().enumerate() {
            let key = if w.valid { w.lru + 1 } else { 0 };
            if key < best {
                best = key;
                victim = i;
            }
        }
        ways[victim] = CacheLine { valid: true, tag, lru: self.clock };
        self.miss_penalty
    }
}

/// The lane's memory system: flat low memory + sparse high fallback +
/// I/D caches + MMIO device. Every accessor mirrors
/// [`asbr_mem::MemSystem`] exactly (check order, error values, cache and
/// device side effects) so timing and behaviour are bit-identical.
struct LaneMem {
    flat: Vec<u8>,
    high: Memory,
    icache: LaneCache,
    dcache: LaneCache,
    io: SampleIo,
}

impl LaneMem {
    fn new(cfg: MemSystemConfig) -> LaneMem {
        LaneMem {
            flat: vec![0; FLAT_LIMIT as usize],
            high: Memory::new(),
            icache: LaneCache::new(cfg.icache),
            dcache: LaneCache::new(cfg.dcache),
            io: SampleIo::new(),
        }
    }

    /// Bulk-copies one loader page into the right region.
    fn write_page(&mut self, base: u32, bytes: &[u8]) {
        if base < FLAT_LIMIT {
            // Pages are 4 KiB-aligned and FLAT_LIMIT is a page multiple,
            // so a page starting below the limit fits entirely below it.
            let b = base as usize;
            self.flat[b..b + bytes.len()].copy_from_slice(bytes);
        } else {
            self.high.write_bytes(base, bytes);
        }
    }

    #[inline]
    fn read_u8(&self, addr: u32) -> u8 {
        if addr < FLAT_LIMIT {
            self.flat[addr as usize]
        } else {
            self.high.read_u8(addr)
        }
    }

    #[inline]
    fn write_u8(&mut self, addr: u32, value: u8) {
        if addr < FLAT_LIMIT {
            self.flat[addr as usize] = value;
        } else {
            self.high.write_u8(addr, value);
        }
    }

    #[inline]
    fn read_u16(&self, addr: u32) -> Result<u16, MemAccessError> {
        if !addr.is_multiple_of(2) {
            return Err(MemAccessError::Misaligned { addr, required_align: 2 });
        }
        if addr < FLAT_LIMIT {
            let a = addr as usize;
            Ok(u16::from_le_bytes([self.flat[a], self.flat[a + 1]]))
        } else {
            self.high.read_u16(addr)
        }
    }

    #[inline]
    fn write_u16(&mut self, addr: u32, value: u16) -> Result<(), MemAccessError> {
        if !addr.is_multiple_of(2) {
            return Err(MemAccessError::Misaligned { addr, required_align: 2 });
        }
        if addr < FLAT_LIMIT {
            let a = addr as usize;
            self.flat[a..a + 2].copy_from_slice(&value.to_le_bytes());
            Ok(())
        } else {
            self.high.write_u16(addr, value)
        }
    }

    #[inline]
    fn read_u32(&self, addr: u32) -> Result<u32, MemAccessError> {
        if !addr.is_multiple_of(4) {
            return Err(MemAccessError::Misaligned { addr, required_align: 4 });
        }
        if addr < FLAT_LIMIT {
            let a = addr as usize;
            Ok(u32::from_le_bytes(self.flat[a..a + 4].try_into().expect("4-byte slice")))
        } else {
            self.high.read_u32(addr)
        }
    }

    #[inline]
    fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), MemAccessError> {
        if !addr.is_multiple_of(4) {
            return Err(MemAccessError::Misaligned { addr, required_align: 4 });
        }
        if addr < FLAT_LIMIT {
            let a = addr as usize;
            self.flat[a..a + 4].copy_from_slice(&value.to_le_bytes());
            Ok(())
        } else {
            self.high.write_u32(addr, value)
        }
    }

    #[inline]
    fn fetch_instr(&mut self, pc: u32) -> Result<Access, MemAccessError> {
        let value = self.read_u32(pc)?;
        let penalty = self.icache.access(pc);
        Ok(Access { value, penalty })
    }

    #[inline]
    fn fetch_penalty(&mut self, pc: u32) -> u32 {
        self.icache.access(pc)
    }

    #[inline]
    fn timed_read(&mut self, addr: u32, bytes: u32) -> Result<Access, MemAccessError> {
        if SampleIo::contains(addr) {
            if !addr.is_multiple_of(bytes) {
                return Err(MemAccessError::Misaligned { addr, required_align: bytes });
            }
            return Ok(Access { value: self.io.read(addr & !3), penalty: 0 });
        }
        let value = match bytes {
            1 => u32::from(self.read_u8(addr)),
            2 => u32::from(self.read_u16(addr)?),
            4 => self.read_u32(addr)?,
            _ => return Err(MemAccessError::UnsupportedWidth { addr, bytes }),
        };
        let penalty = self.dcache.access(addr);
        Ok(Access { value, penalty })
    }

    #[inline]
    fn timed_write(&mut self, addr: u32, value: u32, bytes: u32) -> Result<u32, MemAccessError> {
        if SampleIo::contains(addr) {
            if !addr.is_multiple_of(bytes) {
                return Err(MemAccessError::Misaligned { addr, required_align: bytes });
            }
            self.io.write(addr & !3, value);
            return Ok(0);
        }
        match bytes {
            1 => self.write_u8(addr, value as u8),
            2 => self.write_u16(addr, value as u16)?,
            4 => self.write_u32(addr, value)?,
            _ => return Err(MemAccessError::UnsupportedWidth { addr, bytes }),
        }
        Ok(self.dcache.access(addr))
    }
}

// ----------------------------------------------------------------------
// Dense per-PC statistics
// ----------------------------------------------------------------------

/// Array-indexed per-PC records for in-text PCs (index = text offset / 4)
/// with a sparse spill for everything else. Converts exactly to the
/// scalar engine's maps: scalar maps only contain touched entries, and
/// every touch increments a counter, so "non-default" is precisely
/// "present in the scalar map".
struct DenseMap<T> {
    base: u32,
    entries: Vec<T>,
    spill: BTreeMap<u32, T>,
}

impl<T: Copy + Default + PartialEq> DenseMap<T> {
    fn new(base: u32, len: usize) -> DenseMap<T> {
        DenseMap { base, entries: vec![T::default(); len], spill: BTreeMap::new() }
    }

    #[inline]
    fn get_mut(&mut self, pc: u32) -> &mut T {
        let off = pc.wrapping_sub(self.base);
        let idx = (off >> 2) as usize;
        if off & 3 == 0 && idx < self.entries.len() {
            &mut self.entries[idx]
        } else {
            self.spill.entry(pc).or_default()
        }
    }

    /// The touched entries as `(pc, record)` pairs, dense then spill.
    fn touched(&self) -> impl Iterator<Item = (u32, T)> + '_ {
        let dflt = T::default();
        self.entries
            .iter()
            .enumerate()
            .filter(move |(_, t)| **t != dflt)
            .map(move |(i, t)| (self.base.wrapping_add(4 * i as u32), *t))
            .chain(self.spill.iter().map(|(&pc, &t)| (pc, t)))
    }
}

/// Dense mirror of [`PipelineStats`]: same scalar counters, array
/// attribution buckets, dense per-site/per-branch maps.
struct LaneStats {
    cycles: u64,
    retired: u64,
    branch_flushes: u64,
    jump_redirects: u64,
    indirect_flushes: u64,
    load_use_stalls: u64,
    icache_stall_cycles: u64,
    dcache_stall_cycles: u64,
    ex_stall_cycles: u64,
    folded_branches: u64,
    activity: Activity,
    buckets: [u64; NUM_BUCKETS],
    sites: DenseMap<BranchSite>,
    branches: DenseMap<BranchRecord>,
}

impl LaneStats {
    fn new(text_base: u32, text_len: usize) -> LaneStats {
        LaneStats {
            cycles: 0,
            retired: 0,
            branch_flushes: 0,
            jump_redirects: 0,
            indirect_flushes: 0,
            load_use_stalls: 0,
            icache_stall_cycles: 0,
            dcache_stall_cycles: 0,
            ex_stall_cycles: 0,
            folded_branches: 0,
            activity: Activity::default(),
            buckets: [0; NUM_BUCKETS],
            sites: DenseMap::new(text_base, text_len),
            branches: DenseMap::new(text_base, text_len),
        }
    }

    /// Mirrors [`CycleAttribution::charge`].
    #[inline]
    fn charge(&mut self, bucket: CycleBucket, origin_pc: u32) {
        self.buckets[bucket as usize] += 1;
        if bucket == CycleBucket::BranchFlush {
            self.sites.get_mut(origin_pc).flush_cycles += 1;
        }
    }

    /// Converts to the scalar representation — exact, see [`DenseMap`].
    fn to_pipeline_stats(&self) -> PipelineStats {
        let sites: BTreeMap<u32, BranchSite> = self.sites.touched().collect();
        let mut buckets = self.buckets;
        // One Useful charge per retire; counted once here instead of in
        // stage_wb (see the comment there).
        buckets[CycleBucket::Useful as usize] = self.retired;
        PipelineStats {
            cycles: self.cycles,
            retired: self.retired,
            branches: AccuracyTracker::from_records(self.branches.touched()),
            branch_flushes: self.branch_flushes,
            jump_redirects: self.jump_redirects,
            indirect_flushes: self.indirect_flushes,
            load_use_stalls: self.load_use_stalls,
            icache_stall_cycles: self.icache_stall_cycles,
            dcache_stall_cycles: self.dcache_stall_cycles,
            ex_stall_cycles: self.ex_stall_cycles,
            folded_branches: self.folded_branches,
            activity: self.activity,
            attribution: CycleAttribution::from_parts(buckets, sites),
        }
    }
}

// ----------------------------------------------------------------------
// Lane predictor
// ----------------------------------------------------------------------

/// Statically-dispatched direction predictor for the common kinds, so the
/// per-branch predict/update pair inlines into the lane instead of going
/// through the scalar engine's `Box<dyn Predictor>` vtable. Behaviour is
/// the concrete predictor's — same tables, same state transitions — and
/// uncommon kinds fall back to the boxed form.
enum LanePred {
    NotTaken,
    Taken,
    Bimodal(Bimodal),
    Gshare(Gshare),
    Dyn(Box<dyn Predictor>),
}

impl LanePred {
    fn from_kind(kind: PredictorKind) -> LanePred {
        match kind {
            PredictorKind::NotTaken => LanePred::NotTaken,
            PredictorKind::Taken => LanePred::Taken,
            PredictorKind::Bimodal { entries } => LanePred::Bimodal(Bimodal::new(entries)),
            PredictorKind::Gshare { hist_bits, entries } => {
                LanePred::Gshare(Gshare::new(hist_bits, entries))
            }
            other => LanePred::Dyn(other.build()),
        }
    }

    #[inline]
    fn predict(&mut self, pc: u32) -> bool {
        match self {
            LanePred::NotTaken => false,
            LanePred::Taken => true,
            LanePred::Bimodal(p) => p.predict(pc),
            LanePred::Gshare(p) => p.predict(pc),
            LanePred::Dyn(p) => p.predict(pc),
        }
    }

    #[inline]
    fn update(&mut self, pc: u32, taken: bool) {
        match self {
            LanePred::NotTaken | LanePred::Taken => {}
            LanePred::Bimodal(p) => p.update(pc, taken),
            LanePred::Gshare(p) => p.update(pc, taken),
            LanePred::Dyn(p) => p.update(pc, taken),
        }
    }
}

// ----------------------------------------------------------------------
// Lane
// ----------------------------------------------------------------------

/// One in-flight instruction (the arena entry). The scalar pipeline's
/// slot, with two representation changes: lanes move arena *indices*
/// through the latches instead of the whole struct, and instead of the
/// full `ExecEffect` only the three pieces later stages read are kept —
/// the memory operation, the load destination, and the writeback value
/// (stored into `value` at EX, where the scalar engine defers it to MEM;
/// nothing observes `value` between EX and MEM, and loads overwrite it
/// at MEM exactly as the scalar engine does). The `halt` effect is
/// equivalent to `meta.is_halt`, which WB uses instead.
#[derive(Clone, Copy)]
struct Slot {
    pc: u32,
    instr: Instr,
    meta: SlotMeta,
    assumed_next: u32,
    predicted_taken: Option<bool>,
    writer_pending: Option<Reg>,
    mem_op: Option<MemOp>,
    load_dst: Option<Reg>,
    value: Option<(Reg, u32)>,
}

impl Slot {
    fn dummy() -> Slot {
        Slot {
            pc: 0,
            instr: Instr::Halt,
            meta: SlotMeta::from_instr(Instr::Halt, 0, 1, 1),
            assumed_next: 0,
            predicted_taken: None,
            writer_pending: None,
            mem_op: None,
            load_dst: None,
            value: None,
        }
    }
}

struct Redirect {
    target: u32,
    pc: u32,
    indirect: bool,
}

/// One complete 5-stage machine over lane-local state. Every stage is a
/// literal port of the scalar [`crate::Pipeline`] stage of the same name
/// (same order of checks, stat updates, hook calls, and early returns);
/// deviations are only in data representation.
struct Lane<H: SimHooks> {
    cfg: PipelineConfig,
    regs: [u32; 32],
    pc: u32,
    mem: LaneMem,
    code: CodeStore,
    pred: LanePred,
    btb: Option<Btb>,
    ras: Option<ReturnStack>,
    hooks: H,

    // Slot arena, allocated as a ring: slots enter in fetch order and die
    // in order (in-order retirement; squashes only kill the youngest), so
    // the slot allocated `POOL` fetches ago is always dead — at most 7 of
    // the latch positions can be occupied at once. No free list needed.
    pool: [Slot; POOL],
    head: u32,

    // Latches (arena indices), upstream to downstream.
    fetching: Option<(usize, u32)>,
    if_id: Option<usize>,
    id_ex: Option<usize>,
    ex_hold: Option<(usize, u32)>,
    ex_mem: Option<usize>,
    mem_hold: Option<(usize, u32)>,
    mem_wb: Option<usize>,

    gap_if_id: Gap,
    gap_id_ex: Gap,
    gap_ex_mem: Gap,
    gap_mem_wb: Gap,

    halted: bool,
    halt_fetched: bool,
    stats: LaneStats,
}

impl<H: SimHooks> Lane<H> {
    fn new(
        cfg: PipelineConfig,
        pred: PredictorKind,
        hooks: H,
        program: &Program,
        input: Vec<i32>,
    ) -> Result<Lane<H>, SimError> {
        let decoded = program.decoded().map_err(|source| SimError::InvalidText { source })?;
        let text_base = decoded.text_base();
        let text_len = decoded.len();

        let mut mem = LaneMem::new(cfg.mem);
        let mut staging = Memory::new();
        program.load_into(&mut staging);
        for (base, bytes) in staging.pages() {
            mem.write_page(base, bytes);
        }
        mem.io.extend_input(input);

        let mut code = CodeStore::new(decoded, cfg.mul_latency, cfg.div_latency);
        code.mark_fold_candidates(|pc| hooks.fold_candidate(pc));

        let mut regs = [0u32; 32];
        regs[usize::from(Reg::SP)] = STACK_TOP;
        Ok(Lane {
            cfg,
            regs,
            pc: program.entry(),
            mem,
            code,
            pred: LanePred::from_kind(pred),
            btb: (cfg.btb_entries > 0).then(|| Btb::new(cfg.btb_entries)),
            ras: (cfg.ras_entries > 0).then(|| ReturnStack::new(cfg.ras_entries)),
            hooks,
            pool: [Slot::dummy(); POOL],
            head: 0,
            fetching: None,
            if_id: None,
            id_ex: None,
            ex_hold: None,
            ex_mem: None,
            mem_hold: None,
            mem_wb: None,
            gap_if_id: GAP_FILL,
            gap_id_ex: GAP_FILL,
            gap_ex_mem: GAP_FILL,
            gap_mem_wb: GAP_FILL,
            halted: false,
            halt_fetched: false,
            stats: LaneStats::new(text_base, text_len),
        })
    }

    fn summary(&self) -> PipelineSummary {
        PipelineSummary {
            stats: self.stats.to_pipeline_stats(),
            output: self.mem.io.output().to_vec(),
            halted: self.halted,
        }
    }

    fn cycle(&mut self) -> Result<(), SimError> {
        if self.halted {
            return Ok(());
        }
        self.stats.cycles += 1;

        self.stage_wb();
        if self.halted {
            return Ok(());
        }

        if let Some((i, remaining)) = self.mem_hold.take() {
            self.stats.dcache_stall_cycles += 1;
            self.gap_mem_wb = (CycleBucket::DcacheStall, self.pool[i & (POOL - 1)].pc);
            if remaining > 1 {
                self.mem_hold = Some((i, remaining - 1));
            } else {
                self.finish_mem(i);
            }
            return Ok(());
        }
        if self.stage_mem()? {
            return Ok(());
        }

        if let Some(r) = self.stage_ex() {
            self.squash_if_id_and_fetch();
            let bucket =
                if r.indirect { CycleBucket::IndirectFlush } else { CycleBucket::BranchFlush };
            self.gap_if_id = (bucket, r.pc);
            self.gap_id_ex = (bucket, r.pc);
            self.pc = r.target;
            self.halt_fetched = false;
            return Ok(());
        }

        if let Some(redirect) = self.stage_id() {
            self.squash_fetch_in_flight();
            self.pc = redirect;
            self.halt_fetched = false;
            return Ok(());
        }

        self.stage_if()
    }

    #[inline]
    fn stage_wb(&mut self) {
        let Some(i) = self.mem_wb.take() else {
            let (bucket, origin) = self.gap_mem_wb;
            self.stats.charge(bucket, origin);
            return;
        };
        let slot = &self.pool[i & (POOL - 1)];
        let (pc, is_branch) = (slot.pc, slot.meta.is_branch);
        let (value, writer_pending) = (slot.value, slot.writer_pending);
        let halt = slot.meta.is_halt;
        // The Useful bucket is exactly `retired` (one charge per retire,
        // and Useful is never a flush bucket); it is materialized from
        // `retired` in `to_pipeline_stats` instead of counted here.
        if is_branch {
            self.stats.sites.get_mut(pc).retired += 1;
        }
        if let Some((r, v)) = value {
            if !r.is_zero() {
                self.regs[usize::from(r)] = v;
                self.stats.activity.reg_writes += 1;
            }
        }
        if let Some(wr) = writer_pending {
            let v = value.expect("announced writer has a value").1;
            self.hooks.note_publish(wr, v);
        }
        self.stats.retired += 1;
        if halt {
            self.halted = true;
        }
    }

    #[inline]
    fn stage_mem(&mut self) -> Result<bool, SimError> {
        let Some(i) = self.ex_mem.take() else {
            self.gap_mem_wb = self.gap_ex_mem;
            return Ok(false);
        };
        let i = i & (POOL - 1);
        if let Some(op) = self.pool[i].mem_op {
            self.stats.activity.mem_ops += 1;
            let pc = self.pool[i].pc;
            let penalty = if let Some(value) = op.store {
                let penalty = self
                    .mem
                    .timed_write(op.addr, value, op.bytes)
                    .map_err(|source| SimError::Mem { pc, source })?;
                self.code.note_store(op.addr, op.bytes);
                penalty
            } else {
                let access = self
                    .mem
                    .timed_read(op.addr, op.bytes)
                    .map_err(|source| SimError::Mem { pc, source })?;
                let width = match op.bytes {
                    1 => asbr_isa::MemWidth::Byte,
                    2 => asbr_isa::MemWidth::Half,
                    _ => asbr_isa::MemWidth::Word,
                };
                let dst = self.pool[i].load_dst.expect("loads have a destination");
                self.pool[i].value = Some((dst, extend_load(access.value, width, op.unsigned)));
                access.penalty
            };
            if penalty > 0 {
                self.gap_mem_wb = (CycleBucket::DcacheStall, pc);
                self.gap_ex_mem = (CycleBucket::DcacheStall, pc);
                self.mem_hold = Some((i, penalty));
                return Ok(true);
            }
        }
        self.finish_mem(i);
        Ok(false)
    }

    #[inline]
    fn finish_mem(&mut self, i: usize) {
        // `value` already holds the EX writeback (or the loaded value for
        // loads); no fallback needed.
        let i = i & (POOL - 1);
        if self.hooks.publish_point() != PublishPoint::Commit {
            if let (Some(wr), Some((_, v))) = (self.pool[i].writer_pending, self.pool[i].value) {
                self.hooks.note_publish(wr, v);
                self.pool[i].writer_pending = None;
            }
        }
        self.mem_wb = Some(i);
    }

    #[inline]
    fn stage_ex(&mut self) -> Option<Redirect> {
        if let Some((i, remaining)) = self.ex_hold.take() {
            self.stats.ex_stall_cycles += 1;
            if remaining > 1 {
                self.gap_ex_mem = (CycleBucket::ExOccupancy, self.pool[i & (POOL - 1)].pc);
                self.ex_hold = Some((i, remaining - 1));
                return None;
            }
            return self.finish_ex(i);
        }
        let Some(i) = self.id_ex.take() else {
            self.gap_ex_mem = self.gap_id_ex;
            return None;
        };
        let i = i & (POOL - 1);
        let latency = self.pool[i].meta.latency;
        if latency > 1 {
            self.gap_ex_mem = (CycleBucket::ExOccupancy, self.pool[i].pc);
            self.ex_hold = Some((i, latency - 1));
            return None;
        }
        self.finish_ex(i)
    }

    #[inline]
    fn finish_ex(&mut self, i: usize) -> Option<Redirect> {
        let i = i & (POOL - 1);
        let fwd = self.mem_wb.and_then(|j| self.pool[j & (POOL - 1)].value);
        let (pc, instr) = (self.pool[i].pc, self.pool[i].instr);
        let regs = &self.regs;
        let read = |r: Reg| -> u32 {
            if r.is_zero() {
                return 0;
            }
            if let Some((fr, fv)) = fwd {
                if fr == r {
                    return fv;
                }
            }
            regs[usize::from(r)]
        };
        let fx = execute(instr, pc, read);
        self.pool[i].mem_op = fx.mem;
        self.pool[i].load_dst = fx.load_dst;
        self.pool[i].value = fx.writeback;
        self.stats.activity.executed += 1;

        let mut redirect = None;
        if let Some(ctl) = fx.control {
            let actual_next = ctl.next_pc(pc);
            match ctl {
                ControlEffect::Branch { taken, target } => {
                    let predicted = self.pool[i].predicted_taken.unwrap_or(false);
                    // Mirrors AccuracyTracker::record (the aggregate is
                    // recomputed at summary time by from_records).
                    let rec = self.stats.branches.get_mut(pc);
                    rec.executed += 1;
                    rec.taken += u64::from(taken);
                    rec.correct += u64::from(predicted == taken);
                    self.pred.update(pc, taken);
                    self.stats.activity.predictor_updates += 1;
                    if taken {
                        if let Some(btb) = &mut self.btb {
                            btb.update(pc, target);
                        }
                    }
                    if actual_next != self.pool[i].assumed_next {
                        self.stats.branch_flushes += 1;
                        self.stats.sites.get_mut(pc).flushes += 1;
                        redirect = Some(Redirect { target: actual_next, pc, indirect: false });
                    }
                }
                ControlEffect::Jump { .. } => {
                    if actual_next != self.pool[i].assumed_next {
                        self.stats.indirect_flushes += 1;
                        redirect = Some(Redirect { target: actual_next, pc, indirect: true });
                    }
                }
            }
        }
        if let Some((ctrl, value)) = fx.ctrl_write {
            self.hooks.note_ctrl_write(ctrl, value);
        }
        if self.hooks.publish_point() == PublishPoint::Execute {
            if let (Some(wr), Some((_, v))) = (self.pool[i].writer_pending, fx.writeback) {
                self.hooks.note_publish(wr, v);
                self.pool[i].writer_pending = None;
            }
        }
        self.ex_mem = Some(i);
        redirect
    }

    #[inline]
    fn stage_id(&mut self) -> Option<u32> {
        if self.id_ex.is_some() {
            return None;
        }
        let Some(i) = self.if_id.take() else {
            self.gap_id_ex = self.gap_if_id;
            return None;
        };
        let i = i & (POOL - 1);

        if let Some(j) = self.ex_mem {
            if let Some(dst) = self.pool[j & (POOL - 1)].load_dst {
                let srcs = self.pool[i].meta.srcs;
                if srcs.iter().flatten().any(|&s| s == dst) {
                    self.stats.load_use_stalls += 1;
                    self.gap_id_ex = (CycleBucket::LoadUse, self.pool[i].pc);
                    self.if_id = Some(i);
                    return None;
                }
            }
        }

        self.stats.activity.decoded += 1;
        let mut redirect = None;
        if let Some(target) = self.pool[i].meta.direct_target {
            if target != self.pool[i].assumed_next {
                self.pool[i].assumed_next = target;
                self.stats.jump_redirects += 1;
                self.gap_if_id = (CycleBucket::JumpRedirect, self.pool[i].pc);
                redirect = Some(target);
            }
        }
        self.id_ex = Some(i);
        redirect
    }

    #[inline]
    fn stage_if(&mut self) -> Result<(), SimError> {
        if let Some((i, mut delay)) = self.fetching.take() {
            if delay > 0 {
                delay -= 1;
                self.stats.icache_stall_cycles += 1;
            }
            if delay == 0 && self.if_id.is_none() {
                self.if_id = Some(i);
            } else {
                if self.if_id.is_none() {
                    self.gap_if_id = (CycleBucket::IcacheStall, self.pool[i].pc);
                }
                self.fetching = Some((i, delay));
            }
            return Ok(());
        }
        if self.if_id.is_some() {
            return Ok(());
        }
        if self.halt_fetched {
            self.gap_if_id = GAP_FILL;
            return Ok(());
        }

        let pc = self.pc;
        let (word, predecoded, penalty) = match self.code.fetch(pc) {
            Some((instr, word, meta)) => (word, Some((instr, meta)), self.mem.fetch_penalty(pc)),
            None => {
                let access =
                    self.mem.fetch_instr(pc).map_err(|source| SimError::Mem { pc, source })?;
                (access.value, None, access.penalty)
            }
        };

        let folded = match predecoded {
            Some((_, meta)) if !meta.fold_cand => None,
            _ => self.hooks.try_fold(pc, word),
        };
        // Everything is computed into locals and the slot is written once,
        // fully formed — no read-back of a just-stored struct.
        let (slot_pc, instr, meta, mut assumed_next, mut predicted_taken);
        if let Some(folded) = folded {
            self.stats.folded_branches += 1;
            self.stats.sites.get_mut(pc).folds += 1;
            slot_pc = folded.replacement_pc;
            instr = folded.replacement;
            meta = self.code.meta_for(
                folded.replacement_pc,
                folded.replacement,
                self.cfg.mul_latency,
                self.cfg.div_latency,
            );
            assumed_next = folded.next_pc;
            predicted_taken = if meta.is_branch { Some(false) } else { None };
        } else {
            let (di, dm) = match predecoded {
                Some(hit) => hit,
                None => {
                    let instr =
                        Instr::decode(word).map_err(|_| SimError::InvalidInstr { pc, word })?;
                    (
                        instr,
                        SlotMeta::from_instr(instr, pc, self.cfg.mul_latency, self.cfg.div_latency),
                    )
                }
            };
            slot_pc = pc;
            instr = di;
            meta = dm;
            assumed_next = pc.wrapping_add(INSTR_BYTES);
            predicted_taken = None;
            if meta.is_branch {
                self.stats.activity.predictor_lookups += 1;
                let predicted = self.pred.predict(pc);
                predicted_taken = Some(predicted);
                if predicted {
                    if let Some(target) = self.btb.as_mut().and_then(|b| b.lookup(pc)) {
                        assumed_next = target;
                    }
                }
            }
        }
        if let Some(ras) = &mut self.ras {
            match meta.ras {
                RasClass::Push => {
                    ras.push(slot_pc.wrapping_add(INSTR_BYTES));
                }
                RasClass::PopReturn => {
                    if let Some(target) = ras.pop() {
                        assumed_next = target;
                    }
                }
                RasClass::None => {}
            }
        }

        self.stats.activity.fetched += 1;
        let mut writer_pending = None;
        if let Some(dst) = meta.dst {
            self.hooks.note_fetch_writer(dst);
            writer_pending = Some(dst);
        }
        if meta.is_halt {
            self.halt_fetched = true;
        }
        self.pc = assumed_next;

        let i = (self.head as usize) & (POOL - 1);
        self.head = self.head.wrapping_add(1);
        self.pool[i] = Slot {
            pc: slot_pc,
            instr,
            meta,
            assumed_next,
            predicted_taken,
            writer_pending,
            mem_op: None,
            load_dst: None,
            value: None,
        };

        if penalty > 0 {
            self.gap_if_id = (CycleBucket::IcacheStall, pc);
            self.fetching = Some((i, penalty));
        } else {
            self.if_id = Some(i);
        }
        Ok(())
    }

    #[inline]
    fn squash_slot(&mut self, i: usize) {
        let i = i & (POOL - 1);
        self.stats.activity.squashed += 1;
        if let Some(r) = self.pool[i].writer_pending {
            self.hooks.note_squash_writer(r);
        }
    }

    fn squash_fetch_in_flight(&mut self) {
        if let Some((i, _)) = self.fetching.take() {
            self.squash_slot(i);
        }
    }

    fn squash_if_id_and_fetch(&mut self) {
        if let Some(i) = self.if_id.take() {
            self.squash_slot(i);
        }
        self.squash_fetch_in_flight();
    }
}

// ----------------------------------------------------------------------
// BatchPipeline
// ----------------------------------------------------------------------

/// Drives one group of lanes to completion with the [`RUN_CHUNK`]
/// rotation — the sequential engine shared by [`BatchPipeline::run`]
/// (one group of everything) and [`BatchPipeline::run_sharded`] (one
/// group per host thread).
fn run_group<H: SimHooks>(lanes: &mut [Lane<H>]) -> Result<(), SimError> {
    loop {
        let mut any = false;
        for lane in lanes.iter_mut() {
            if lane.halted {
                continue;
            }
            any = true;
            let target = lane.stats.cycles + RUN_CHUNK;
            while !lane.halted && lane.stats.cycles < target {
                if lane.stats.cycles >= lane.cfg.max_cycles {
                    return Err(SimError::Limit { limit: lane.cfg.max_cycles });
                }
                lane.cycle()?;
            }
        }
        if !any {
            return Ok(());
        }
    }
}

/// N independent cycle-accurate runs in one engine.
///
/// Lanes are added with [`push_lane`] (each with its own configuration,
/// predictor, hooks, program, and input) and driven either strictly
/// cycle-interleaved with [`step_all`] or to completion with [`run`].
/// Lanes never interact, so both schedules produce identical per-lane
/// results; `run` rotates in large per-lane chunks purely for host-cache
/// locality.
///
/// # Examples
///
/// ```
/// use asbr_asm::assemble;
/// use asbr_bpred::PredictorKind;
/// use asbr_sim::{BatchPipeline, NullHooks, PipelineConfig};
///
/// let prog = assemble("
/// main:   li   r4, 10
/// loop:   addi r4, r4, -1
///         bnez r4, loop
///         halt
/// ")?;
/// let mut batch = BatchPipeline::new();
/// for _ in 0..4 {
///     batch.push_lane(
///         PipelineConfig::default(),
///         PredictorKind::Bimodal { entries: 64 },
///         NullHooks,
///         &prog,
///         [],
///     )?;
/// }
/// let summaries = batch.run()?;
/// assert_eq!(summaries.len(), 4);
/// assert!(summaries.iter().all(|s| s.halted));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// [`push_lane`]: BatchPipeline::push_lane
/// [`step_all`]: BatchPipeline::step_all
/// [`run`]: BatchPipeline::run
pub struct BatchPipeline<H: SimHooks = NullHooks> {
    lanes: Vec<Lane<H>>,
}

impl<H: SimHooks> Default for BatchPipeline<H> {
    fn default() -> BatchPipeline<H> {
        BatchPipeline::new()
    }
}

impl<H: SimHooks> BatchPipeline<H> {
    /// An empty batch (no lanes).
    #[must_use]
    pub fn new() -> BatchPipeline<H> {
        BatchPipeline { lanes: Vec::new() }
    }

    /// Adds a lane: one independent run with its own configuration,
    /// predictor, fetch-customization hooks, program, and input. Returns
    /// the lane index.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidText`] when the program's text fails
    /// load-time validation, exactly as [`crate::Pipeline::load`] does.
    ///
    /// # Panics
    ///
    /// Panics on degenerate cache or BTB geometry, as the scalar
    /// constructor does.
    pub fn push_lane(
        &mut self,
        cfg: PipelineConfig,
        pred: PredictorKind,
        hooks: H,
        program: &Program,
        input: impl IntoIterator<Item = i32>,
    ) -> Result<usize, SimError> {
        let lane = Lane::new(cfg, pred, hooks, program, input.into_iter().collect())?;
        self.lanes.push(lane);
        Ok(self.lanes.len() - 1)
    }

    /// Number of lanes.
    #[must_use]
    pub fn width(&self) -> usize {
        self.lanes.len()
    }

    /// Whether every lane has committed `halt`.
    #[must_use]
    pub fn all_halted(&self) -> bool {
        self.lanes.iter().all(|l| l.halted)
    }

    /// Advances every non-halted lane by exactly one cycle — the strict
    /// lock-step schedule. Returns `true` while at least one lane is
    /// still running.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Limit`] when a lane exceeds its configured
    /// `max_cycles`, or any per-cycle error of the underlying machine.
    pub fn step_all(&mut self) -> Result<bool, SimError> {
        let mut running = false;
        for lane in &mut self.lanes {
            if lane.halted {
                continue;
            }
            if lane.stats.cycles >= lane.cfg.max_cycles {
                return Err(SimError::Limit { limit: lane.cfg.max_cycles });
            }
            lane.cycle()?;
            running |= !lane.halted;
        }
        Ok(running)
    }

    /// Runs every lane to `halt` and returns the per-lane summaries (in
    /// lane order). Lanes are rotated in [`RUN_CHUNK`]-cycle slices for
    /// host-cache locality; results are identical to [`step_all`]-driven
    /// execution because lanes are independent.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Limit`] when a lane exceeds its configured
    /// `max_cycles`, or any per-cycle error of the underlying machine.
    ///
    /// [`step_all`]: BatchPipeline::step_all
    pub fn run(&mut self) -> Result<Vec<PipelineSummary>, SimError> {
        run_group(&mut self.lanes)?;
        Ok(self.lanes.iter().map(Lane::summary).collect())
    }

    /// Runs every lane to `halt` like [`run`], splitting the lanes into
    /// `shards` contiguous groups stepped on separate host threads.
    ///
    /// Lanes never interact, so per-lane results (cycles, full stats,
    /// output, registers) are **bit-identical** to [`run`] at every shard
    /// count — the shard count is a host-throughput knob only, invisible
    /// to the simulated machines. `shards` is clamped to `[1, width]`;
    /// `run_sharded(1)` is exactly [`run`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Limit`] when a lane exceeds its configured
    /// `max_cycles`, or any per-cycle error of the underlying machine.
    /// When several shards fail, the error of the earliest lane group (in
    /// lane order) is reported, so the chosen error does not depend on
    /// thread scheduling. (Unlike [`run`], later independent lanes may
    /// have kept running after the failing one stopped — indistinguishable
    /// in the result, since an errored batch yields no summaries.)
    ///
    /// [`run`]: BatchPipeline::run
    pub fn run_sharded(&mut self, shards: usize) -> Result<Vec<PipelineSummary>, SimError>
    where
        H: Send,
    {
        let shards = shards.clamp(1, self.lanes.len().max(1));
        if shards <= 1 {
            return self.run();
        }
        let per_shard = self.lanes.len().div_ceil(shards);
        let results: Vec<Result<(), SimError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .lanes
                .chunks_mut(per_shard)
                .map(|group| scope.spawn(move || run_group(group)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread does not panic"))
                .collect()
        });
        for result in results {
            result?;
        }
        Ok(self.lanes.iter().map(Lane::summary).collect())
    }

    /// The summary of lane `lane` in its current state (complete only
    /// once the lane has halted).
    #[must_use]
    pub fn summary(&self, lane: usize) -> PipelineSummary {
        self.lanes[lane].summary()
    }

    /// The fetch-customization unit of lane `lane`.
    #[must_use]
    pub fn hooks(&self, lane: usize) -> &H {
        &self.lanes[lane].hooks
    }

    /// Reads an architectural register of lane `lane`.
    #[must_use]
    pub fn reg(&self, lane: usize, r: Reg) -> u32 {
        self.lanes[lane].regs[usize::from(r)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pipeline;
    use asbr_asm::assemble;
    use asbr_bpred::PredictorKind;

    const LOOP: &str = "
        main:   li   r4, 50
                li   r2, 0
        loop:   addi r2, r2, 3
                addi r4, r4, -1
                bnez r4, loop
                halt
    ";

    #[test]
    fn lane_matches_scalar_pipeline_exactly() {
        let prog = assemble(LOOP).unwrap();
        let mut scalar =
            Pipeline::new(PipelineConfig::default(), PredictorKind::Bimodal { entries: 64 }.build());
        let s = scalar.execute(&prog, []).unwrap();

        let mut batch = BatchPipeline::new();
        batch
            .push_lane(
                PipelineConfig::default(),
                PredictorKind::Bimodal { entries: 64 },
                NullHooks,
                &prog,
                [],
            )
            .unwrap();
        let b = batch.run().unwrap().remove(0);

        assert_eq!(b.stats, s.stats);
        assert_eq!(b.output, s.output);
        assert_eq!(batch.reg(0, Reg::V0), scalar.reg(Reg::V0));
    }

    #[test]
    fn step_all_equals_run() {
        let prog = assemble(LOOP).unwrap();
        let mk = || {
            let mut batch = BatchPipeline::new();
            for seed in 0..3u32 {
                batch
                    .push_lane(
                        PipelineConfig::default(),
                        PredictorKind::Bimodal { entries: 64 },
                        NullHooks,
                        &prog,
                        [seed as i32],
                    )
                    .unwrap();
            }
            batch
        };
        let mut stepped = mk();
        while stepped.step_all().unwrap() {}
        let mut ran = mk();
        let summaries = ran.run().unwrap();
        for (lane, summary) in summaries.iter().enumerate() {
            let s = stepped.summary(lane);
            assert_eq!(s.stats, summary.stats, "lane {lane}");
            assert_eq!(s.output, summary.output, "lane {lane}");
        }
    }

    #[test]
    fn run_sharded_is_bit_identical_at_every_shard_count() {
        let prog = assemble(LOOP).unwrap();
        let mk = |width: usize| {
            let mut batch = BatchPipeline::new();
            for seed in 0..width {
                batch
                    .push_lane(
                        PipelineConfig::default(),
                        PredictorKind::Bimodal { entries: 64 },
                        NullHooks,
                        &prog,
                        [seed as i32],
                    )
                    .unwrap();
            }
            batch
        };
        let width = 5; // deliberately not divisible by the shard counts
        let reference = mk(width).run().unwrap();
        for shards in [1, 2, 3, width, width + 3] {
            let summaries = mk(width).run_sharded(shards).unwrap();
            for (lane, (s, r)) in summaries.iter().zip(&reference).enumerate() {
                assert_eq!(s.stats, r.stats, "lane {lane} at {shards} shards");
                assert_eq!(s.output, r.output, "lane {lane} at {shards} shards");
            }
        }
    }

    #[test]
    fn mmio_and_dense_stat_spill_round_trip() {
        // Exercises MMIO (penalty-0, D-cache bypassed) and the flat/high
        // address partition in one program.
        let src = "
            main:   li   r8, 0xFFFF0000
            loop:   lw   r9, 4(r8)
                    beqz r9, done
                    lw   r10, 0(r8)
                    sll  r10, r10, 1
                    sw   r10, 8(r8)
                    j    loop
            done:   halt
        ";
        let prog = assemble(src).unwrap();
        let input: Vec<i32> = (0..40).map(|i| i * 7 - 60).collect();

        let mut scalar =
            Pipeline::new(PipelineConfig::default(), PredictorKind::NotTaken.build());
        let s = scalar.execute(&prog, input.iter().copied()).unwrap();

        let mut batch = BatchPipeline::new();
        batch
            .push_lane(
                PipelineConfig::default(),
                PredictorKind::NotTaken,
                NullHooks,
                &prog,
                input,
            )
            .unwrap();
        let b = batch.run().unwrap().remove(0);
        assert_eq!(b.stats, s.stats);
        assert_eq!(b.output, s.output);
    }
}
