//! Per-cycle pipeline introspection.
//!
//! [`PipeSnapshot`] captures which instruction occupies each stage at a
//! given cycle — the classic pipeline-diagram view, useful for debugging
//! guest programs and for teaching what folding does to the instruction
//! stream (a folded branch simply never appears).

use core::fmt;

use asbr_isa::Instr;

/// One stage's occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageView {
    /// The occupant's PC.
    pub pc: u32,
    /// The decoded instruction.
    pub instr: Instr,
}

impl fmt::Display for StageView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x} {}", self.pc, self.instr)
    }
}

/// The pipeline-diagram row for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeSnapshot {
    /// Machine cycle the snapshot was taken at.
    pub cycle: u64,
    /// Instruction being fetched (with refill cycles remaining on an
    /// I-cache miss).
    pub fetch: Option<(StageView, u32)>,
    /// IF/ID latch.
    pub decode: Option<StageView>,
    /// ID/EX latch (or a multi-cycle operation draining in EX, with
    /// remaining cycles).
    pub execute: Option<(StageView, u32)>,
    /// EX/MEM latch (or a D-cache miss draining in MEM, with remaining
    /// cycles).
    pub memory: Option<(StageView, u32)>,
    /// MEM/WB latch.
    pub writeback: Option<StageView>,
}

impl fmt::Display for PipeSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn cell(v: Option<&str>) -> String {
            v.unwrap_or("--").to_owned()
        }
        let fetch = self.fetch.map(|(s, d)| {
            if d > 0 {
                format!("{s} (+{d})")
            } else {
                s.to_string()
            }
        });
        let ex = self.execute.map(|(s, d)| {
            if d > 0 {
                format!("{s} (+{d})")
            } else {
                s.to_string()
            }
        });
        let mem = self.memory.map(|(s, d)| {
            if d > 0 {
                format!("{s} (+{d})")
            } else {
                s.to_string()
            }
        });
        write!(
            f,
            "c{:<6} IF[{}] ID[{}] EX[{}] MEM[{}] WB[{}]",
            self.cycle,
            cell(fetch.as_deref()),
            cell(self.decode.map(|s| s.to_string()).as_deref()),
            cell(ex.as_deref()),
            cell(mem.as_deref()),
            cell(self.writeback.map(|s| s.to_string()).as_deref()),
        )
    }
}
