#!/usr/bin/env bash
# Build and test the workspace without network access, substituting the
# `.devstubs/` stand-ins for crates.io dependencies.
#
# The growth container has no route to any cargo registry, so `cargo
# build` cannot even resolve serde/proptest/rand/criterion. This script
# patches those dependencies to the local stubs on the command line only
# — the committed manifests are untouched, and a connected CI builds
# against the real crates.
#
# Limitations under the stubs:
#   * results/*.json written by the `tables` binary contain a stub
#     placeholder instead of real JSON (serde_json is stubbed). The
#     sweep engine's BENCH_sweep.json and result cache are unaffected:
#     they are serialized by hand in `asbr-harness` with no serde.
#   * property-based test targets (proptest) are excluded; criterion
#     benches are typechecked against the stub but not executed;
#     everything else runs for real.
#
# Usage: scripts/offline-check.sh [build|test|run ...]
#   with no arguments: release build + the full non-proptest test suite.

set -euo pipefail
cd "$(dirname "$0")/.."

STUBS="$(pwd)/.devstubs"
PATCHES=(
  --config "patch.crates-io.serde.path=\"$STUBS/serde\""
  --config "patch.crates-io.serde_derive.path=\"$STUBS/serde_derive\""
  --config "patch.crates-io.serde_json.path=\"$STUBS/serde_json\""
  --config "patch.crates-io.proptest.path=\"$STUBS/proptest\""
  --config "patch.crates-io.rand.path=\"$STUBS/rand\""
  --config "patch.crates-io.criterion.path=\"$STUBS/criterion\""
)

# Test targets that depend on real proptest/rand strategy APIs; the stub
# crates cannot compile them, so the offline harness skips them.
PROPTEST_TARGETS=(
  "-p asbr-isa --test roundtrip"
  "-p asbr-core --test bdt_model"
  "-p asbr-sim --test differential"
  "-p asbr-asm --test asm_props"
  "-p asbr-bpred --test properties"
  "-p asbr-experiments --test fold_differential"
)

run_cargo() {
  cargo --offline "${PATCHES[@]}" "$@"
}

case "${1:-all}" in
  build)
    shift
    run_cargo build --release "$@"
    ;;
  run)
    shift
    run_cargo run --release "$@"
    ;;
  test)
    shift
    run_cargo test --release "$@"
    ;;
  all)
    run_cargo build --release --workspace --bins --lib
    # Library unit tests for every crate, then each non-proptest
    # integration test target.
    for p in asbr-isa asbr-asm asbr-mem asbr-bpred asbr-sim asbr-core \
             asbr-flow asbr-codecs asbr-workloads asbr-check asbr-profile \
             asbr-experiments asbr-harness; do
      run_cargo test --release -p "$p" --lib -q
    done
    run_cargo test --release -p asbr-experiments \
      --test pipeline_vs_interp --test lockstep --test asbr_correctness \
      --test asbr_speedup --test experiment_tables --test scheduling_support \
      --test customization_image --test cli --test config_matrix \
      --test sweep --test attribution --test wcet --test serve --test strategy \
      --test api_surface --test explore -q
    run_cargo test --release -p asbr-check --test static_check -q
    # Bench targets: typecheck only (the criterion stub measures nothing).
    run_cargo check -p asbr-harness --benches
    ;;
  *)
    echo "usage: $0 [build|test|run ...]" >&2
    exit 2
    ;;
esac
