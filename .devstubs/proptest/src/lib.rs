//! Offline resolution stub for `proptest`. Test targets that use the
//! real macros are excluded from `scripts/offline-check.sh`; this crate
//! exists only so dependency resolution succeeds without the network.
