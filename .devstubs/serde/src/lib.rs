//! Offline type-check stub for `serde` (see `.devstubs/README.md`).
//!
//! The build container used for repo growth has no crates.io access, so
//! this stub stands in for the real crate when running
//! `scripts/offline-check.sh`. It provides just enough surface for the
//! workspace to compile: a no-op `Serialize` satisfied by every type.

/// No-op stand-in for `serde::Serialize`; blanket-implemented so the
/// empty derive in the `serde_derive` stub never conflicts.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;
