//! Offline resolution stub for `criterion` (see `.devstubs/README.md`).
//!
//! Carries just enough API surface that `cargo check --benches` works
//! offline, so bench-target code is at least typechecked; the stub
//! executes each closure once and measures nothing. Real runs need the
//! real crate (connected CI).

/// Measurement driver stand-in.
pub struct Criterion;

impl Criterion {
    /// Creates a named group stand-in.
    pub fn benchmark_group(&mut self, _name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup
    }
}

/// Bench-group stand-in.
pub struct BenchmarkGroup;

impl BenchmarkGroup {
    /// Ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs the body once so the code path is exercised.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        _id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        f(&mut Bencher);
        self
    }

    /// Ignored.
    pub fn finish(self) {}
}

/// Per-bench driver stand-in.
pub struct Bencher;

impl Bencher {
    /// Calls the routine once.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let _ = routine();
    }
}

/// Identity opacity hint.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collects bench functions, mirroring the real macro's shape.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion;
            $($target(&mut c);)+
        }
    };
}

/// Emits a `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
