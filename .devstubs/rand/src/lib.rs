//! Offline resolution stub for `rand` (see `.devstubs/README.md`).
