//! Offline type-check stub for `serde_json` (see `.devstubs/README.md`).
//!
//! `to_string`/`to_string_pretty` return a placeholder document rather
//! than real JSON: results files written under the stub are marked as
//! such instead of silently looking genuine.

use std::fmt;

/// Stub error type (never constructed).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stub error")
    }
}

impl std::error::Error for Error {}

/// Placeholder serialization (offline stub — not real JSON output).
pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String, Error> {
    Ok("\"devstub: serialized with the offline serde_json stub\"".to_owned())
}

/// Placeholder pretty serialization (offline stub — not real JSON output).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String, Error> {
    to_string(_value)
}
