//! Offline type-check stub for `serde_derive`: the derive expands to
//! nothing (the `serde` stub's blanket impl already covers every type).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
